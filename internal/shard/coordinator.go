package shard

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/live"
	"repro/internal/run"
)

// MaxShards bounds the shard count of one session; far above any useful
// fan-out on one machine, it only stops typos from allocating absurdly.
const MaxShards = 64

// routing is the coordinator's published routing table: the number of
// structurally applied steps and the cumulative item count after each of
// them (itemsAt[s] is the item count after s steps; itemsAt[0] counts the
// initial items). It is published before the step is dispatched to its
// owner, so any step visible in a shard prefix is covered by the latest
// routing table — the ordering Vector pinning relies on.
type routing struct {
	steps   int
	itemsAt []int
}

// Coordinator owns the structural half of a sharded session: the run, the
// paths-only labeler tracking the compressed parse tree, and the routing
// table. Producers (Apply, Feed) serialize on the coordinator's mutex for
// the structural step, then dispatch the step's envelope to the owning
// shard outside the lock; the shard's ticket ordering restores local step
// order. Readers pin epoch vectors with Pin and never block producers.
type Coordinator struct {
	scheme *core.Scheme
	n      int
	shards []Shard

	mu         sync.Mutex
	run        *run.Run
	paths      *core.RunLabeler
	sink       live.JournalSink
	failed     error
	itemsAtBuf []int

	rt atomic.Pointer[routing]
}

// New starts a sharded run of the scheme's specification: the coordinator
// derives the initial run state, ships shard 0 its initial items (the other
// shards initialize empty), and publishes the routing table at step 0.
// sink, when non-nil, receives every structurally applied step under the
// producer lock — the global journal of the session; durable sessions pass
// nil here and journal per shard instead.
func New(scheme *core.Scheme, shards []Shard, sink live.JournalSink) (*Coordinator, error) {
	if scheme == nil {
		return nil, fmt.Errorf("shard: nil scheme")
	}
	if len(shards) < 1 || len(shards) > MaxShards {
		return nil, fmt.Errorf("shard: %d shards out of range [1, %d]", len(shards), MaxShards)
	}
	c := &Coordinator{scheme: scheme, n: len(shards), shards: shards, sink: sink}
	c.run = run.New(scheme.Spec)
	c.paths = scheme.NewPathTracker()
	if err := c.paths.OnInit(c.run); err != nil {
		return nil, err
	}
	initial := make([]core.RemoteItem, 0, len(c.run.Items))
	for _, item := range c.run.Items {
		ri, err := c.remoteItem(item)
		if err != nil {
			return nil, err
		}
		initial = append(initial, ri)
	}
	for k, sh := range c.shards {
		var items []core.RemoteItem
		if k == 0 {
			items = initial
		}
		if err := sh.Init(items); err != nil {
			return nil, fmt.Errorf("shard: initializing shard %d: %w", k, err)
		}
	}
	c.mu.Lock()
	c.itemsAtBuf = append(c.itemsAtBuf, len(c.run.Items))
	c.publishRoutingLocked()
	c.mu.Unlock()
	return c, nil
}

// Restore rebuilds a coordinator around recovered state — a run and the
// paths tracker that placed it — without replaying a single step. The
// shards must already be restored to exactly their share of the run's
// steps (Owned of len(r.Steps)); the caller then replays any journal tail
// through Apply. A sink attached here starts at the restored epoch.
func Restore(scheme *core.Scheme, shards []Shard, r *run.Run, paths *core.RunLabeler, sink live.JournalSink) (*Coordinator, error) {
	if scheme == nil || r == nil || paths == nil {
		return nil, fmt.Errorf("shard: restore needs a scheme, a run and a paths tracker")
	}
	if r.Spec != scheme.Spec {
		return nil, fmt.Errorf("shard: restored run: %w", faults.ErrForeignLabel)
	}
	if len(shards) < 1 || len(shards) > MaxShards {
		return nil, fmt.Errorf("shard: %d shards out of range [1, %d]", len(shards), MaxShards)
	}
	c := &Coordinator{scheme: scheme, n: len(shards), shards: shards, sink: sink, run: r, paths: paths}
	steps := len(r.Steps)
	for k, sh := range c.shards {
		p := sh.Prefix()
		if p == nil {
			return nil, fmt.Errorf("shard: restored shard %d has no published prefix", k)
		}
		if want := Owned(steps, k, c.n); p.Steps() != want {
			return nil, fmt.Errorf("shard: restored shard %d is at local step %d, want %d for a run of %d steps",
				k, p.Steps(), want, steps)
		}
	}
	// Rebuild the routing table from the run: item IDs are dealt in step
	// order, so the cumulative count after step s is the count of items
	// created at steps <= s.
	c.mu.Lock()
	c.itemsAtBuf = make([]int, steps+1)
	for _, item := range r.Items {
		c.itemsAtBuf[item.Step]++
	}
	for s := 1; s <= steps; s++ {
		c.itemsAtBuf[s] += c.itemsAtBuf[s-1]
	}
	c.publishRoutingLocked()
	c.mu.Unlock()
	return c, nil
}

// Shards returns the shard count n.
func (c *Coordinator) Shards() int { return c.n }

// Scheme returns the labeling scheme the session labels with.
func (c *Coordinator) Scheme() *core.Scheme { return c.scheme }

// remoteItem resolves one data item's port endpoints to parse-tree paths.
// Callers hold the producer lock (or are inside construction).
func (c *Coordinator) remoteItem(item run.DataItem) (core.RemoteItem, error) {
	ri := core.RemoteItem{ID: item.ID}
	if item.Src >= 0 {
		port, _ := c.run.Port(item.Src)
		path, ok := c.paths.PathOf(port.Owner)
		if !ok {
			return ri, fmt.Errorf("shard: item %d source owner %d was never placed in the parse tree", item.ID, port.Owner)
		}
		ri.Src = &core.RemotePort{Path: path, Port: port.Index}
	}
	if item.Dst >= 0 {
		port, _ := c.run.Port(item.Dst)
		path, ok := c.paths.PathOf(port.Owner)
		if !ok {
			return ri, fmt.Errorf("shard: item %d destination owner %d was never placed in the parse tree", item.ID, port.Owner)
		}
		ri.Dst = &core.RemotePort{Path: path, Port: port.Index}
	}
	return ri, nil
}

// applyStructural performs the locked half of Apply: validate and record
// the derivation step, place the new instances in the parse tree, build the
// owner's envelope, journal the step to the global sink (if any), and
// publish the routing table. The dispatch itself happens outside the lock.
func (c *Coordinator) applyStructural(instance, prod int) (Shard, StepEnvelope, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed != nil {
		return nil, StepEnvelope{}, fmt.Errorf("shard: coordinator is poisoned: %w", c.failed)
	}
	step, err := c.run.Apply(instance, prod)
	if err != nil {
		return nil, StepEnvelope{}, err
	}
	if err := c.paths.OnStep(c.run, step); err != nil {
		c.failed = err
		return nil, StepEnvelope{}, fmt.Errorf("shard: placing step %d poisoned the coordinator: %w", step.Index, err)
	}
	items := make([]core.RemoteItem, 0, len(step.NewItems))
	for _, itemID := range step.NewItems {
		item, _ := c.run.Item(itemID)
		ri, err := c.remoteItem(item)
		if err != nil {
			c.failed = err
			return nil, StepEnvelope{}, fmt.Errorf("shard: step %d poisoned the coordinator: %w", step.Index, err)
		}
		items = append(items, ri)
	}
	req := live.StepRequest{Instance: instance, Prod: prod}
	if c.sink != nil {
		if err := c.sink.Append(req); err != nil {
			c.failed = fmt.Errorf("shard: journaling step %d: %w", step.Index, err)
			return nil, StepEnvelope{}, c.failed
		}
	}
	owner := ownerOf(step.Index, c.n)
	env := StepEnvelope{
		Global: step.Index,
		Local:  Owned(step.Index, owner, c.n),
		Req:    req,
		Items:  items,
	}
	c.itemsAtBuf = append(c.itemsAtBuf, len(c.run.Items))
	c.publishRoutingLocked()
	return c.shards[owner], env, nil
}

// publishRoutingLocked publishes the routing table — the single store site
// of the coordinator's half of the protocol. itemsAt is capacity-capped so
// a reader can never observe a later append through an aliased tail.
func (c *Coordinator) publishRoutingLocked() {
	n := len(c.itemsAtBuf)
	c.rt.Store(&routing{
		steps:   n - 1,
		itemsAt: c.itemsAtBuf[:n:n],
	})
}

// Apply expands the composite instance with the 1-based production index
// and dispatches the produced items to their owning shard, returning the
// global step index once the owner has labeled and published the step. A
// rejected step (unknown instance, wrong production) leaves the session
// unchanged and usable; a parse-tree, journal or shard failure poisons the
// coordinator.
//
// With concurrent producers the step becomes part of the readable prefix E
// (see Pin) once every earlier step's owner has also published; a single
// producer observes E equal to the returned step index.
func (c *Coordinator) Apply(instance, prod int) (uint64, error) {
	owner, env, err := c.applyStructural(instance, prod)
	if err != nil {
		return 0, err
	}
	if err := owner.ApplyOwned(env); err != nil {
		c.poison(err)
		return 0, err
	}
	return uint64(env.Global), nil
}

// poison records the first shard failure; later producer calls fail with it.
func (c *Coordinator) poison(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed == nil {
		c.failed = err
	}
}

// Feed drains step requests from the channel into the session until the
// channel closes (returns nil), the context is canceled (ErrCanceled), or a
// step fails (the apply error). Multiple Feed calls and direct Apply calls
// may run concurrently.
func (c *Coordinator) Feed(ctx context.Context, reqs <-chan live.StepRequest) error {
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		select {
		case <-ctx.Done():
			return fmt.Errorf("shard: feed canceled at epoch %d: %w (%v)", c.Pin().Epoch(), faults.ErrCanceled, context.Cause(ctx))
		case req, ok := <-reqs:
			if !ok {
				return nil
			}
			if _, err := c.Apply(req.Instance, req.Prod); err != nil {
				return err
			}
		}
	}
}

// Frontier returns the IDs of the unexpanded composite instances — the
// steps a producer may apply next. It reflects every structurally applied
// step, including ones whose labels are still in flight to their shard.
func (c *Coordinator) Frontier() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.run.Frontier()
}

// IsComplete reports whether every composite instance has been expanded.
func (c *Coordinator) IsComplete() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.run.IsComplete()
}

// Expandable returns the 1-based indices of the productions that can expand
// the given instance, or nil for unknown, expanded, or atomic instances.
func (c *Coordinator) Expandable(instanceID int) []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	inst, ok := c.run.Instance(instanceID)
	if !ok || inst.Prod != 0 {
		return nil
	}
	return c.scheme.Spec.Grammar.ProductionsFor(inst.Module)
}

// Err returns the error that poisoned the coordinator, or nil.
func (c *Coordinator) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failed
}

// Exclusive runs fn with the producer lock held, passing the run and the
// paths tracker at one consistent structural epoch — no step can be
// structurally applied while fn runs. Steps already dispatched may still be
// in flight to their shards; fn (the durable checkpoint) drains them with
// MemShard.WaitLocal, which needs no coordinator lock. fn must treat both
// arguments as read-only and must not call back into the coordinator.
//
// A poisoned coordinator refuses, exactly like a poisoned live session.
func (c *Coordinator) Exclusive(fn func(r *run.Run, paths *core.RunLabeler) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed != nil {
		return fmt.Errorf("shard: coordinator is poisoned: %w", c.failed)
	}
	return fn(c.run, c.paths)
}

// WriteJournal exports every structurally applied step in the live journal
// format, under the producer lock, so the session can be rebuilt with a
// journal replay. Unlike a live session's lock-free export this pauses
// producers briefly; the sharded session has no single published step list
// to export from.
func (c *Coordinator) WriteJournal(w io.Writer) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	jw, err := live.NewJournalWriter(w)
	if err != nil {
		return err
	}
	for _, st := range c.run.Steps {
		if err := jw.Append(live.StepRequest{Instance: st.Instance, Prod: st.Prod}); err != nil {
			return err
		}
	}
	return nil
}

// Pin pins one consistent readable cut of the sharded session: the shard
// prefixes are loaded first, the routing table second, so the epoch vector's
// readable prefix E is always covered by the routing table (see the package
// comment for the ordering argument).
func (c *Coordinator) Pin() *Vector {
	prefixes := make([]*ShardPrefix, c.n)
	epoch := 0
	for k, sh := range c.shards {
		p := sh.Prefix()
		prefixes[k] = p
		if cand := k + p.Steps()*c.n; k == 0 || cand < epoch {
			epoch = cand
		}
	}
	rt := c.rt.Load()
	if epoch > rt.steps {
		// Unreachable for a conforming Shard (the routing table for a step
		// is published before the step can appear in any prefix); clamp so
		// a misbehaving implementation cannot drive reads out of range.
		epoch = rt.steps
	}
	return &Vector{n: c.n, prefixes: prefixes, rt: rt, epoch: epoch, items: rt.itemsAt[epoch]}
}

// Epoch returns the readable epoch E of the latest consistent cut.
func (c *Coordinator) Epoch() uint64 { return c.Pin().Epoch() }

// Items returns the number of readable labeled items at the latest cut.
func (c *Coordinator) Items() int { return c.Pin().Items() }

// Label returns the label of the data item at the latest consistent cut.
func (c *Coordinator) Label(itemID int) (*core.DataLabel, bool) {
	return c.Pin().Label(itemID)
}
