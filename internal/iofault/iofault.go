// Package iofault injects storage faults so crash-recovery code can be
// tested against every failure point without killing a process.
//
// The centerpiece is FS, an in-memory implementation of durable.FS with
// power-loss semantics: written bytes become durable only at File.Sync, and
// namespace changes (creates, renames, removes) become durable only at
// FS.SyncDir — exactly the contract the durable package's commit protocol is
// built on. CrashAfter arms a countdown over mutating operations; when it
// expires, the operation fails, every later operation fails too (the process
// is "dead"), and Reboot then discards everything that was not durable —
// optionally keeping a fraction of each file's unsynced tail, which is how
// torn trailing records are produced. A test sweeps the countdown across the
// whole range of operations a scenario performs and asserts recovery after
// every single crash point: the crash matrix.
//
// The package also ships Writer, a minimal fault-injecting io.Writer (fail
// the Nth write, short writes) for code that journals to a plain stream.
package iofault

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path/filepath"
	"sort"

	"repro/internal/durable"
)

// ErrInjected is the error every injected fault carries.
var ErrInjected = errors.New("iofault: injected fault")

// Mode selects what survives of a file's unsynced tail at Reboot.
type Mode int

const (
	// KeepNone drops every unsynced byte: the clean power-loss model.
	KeepNone Mode = iota
	// KeepHalf persists half of each file's unsynced tail (rounded down to
	// an odd count when possible) — a torn write that usually splits a
	// journal record.
	KeepHalf
	// KeepAllButOne persists the whole unsynced tail except its final byte —
	// the smallest possible tear, guaranteed to truncate mid-record when the
	// tail ends with one.
	KeepAllButOne
)

// FS is the fault-injecting filesystem. Create one with New, pass it as
// durable.Options.FS, arm a crash with CrashAfter, and call Reboot to start
// the "next process" on whatever state survived. The zero budget (New) never
// crashes, so a first dry run of a scenario measures its operation count via
// Ops.
//
// FS is not safe for concurrent use; crash-matrix scenarios are single
// producer by construction.
type FS struct {
	mode    Mode
	budget  int // mutating ops until the crash; -1 = never
	ops     int
	crashed bool

	vis map[string]*vfile // visible namespace (the living process's view)
	dur map[string]*vfile // namespace as of the last SyncDir
}

// vfile is one file: data is the visible content, synced the prefix of it
// made durable by File.Sync. The same object may be referenced by both
// namespaces (and under a different name after an unsynced rename).
type vfile struct {
	data   []byte
	synced int
}

// New returns an FS that never crashes (arm with CrashAfter).
func New(mode Mode) *FS {
	return &FS{mode: mode, budget: -1, vis: map[string]*vfile{}, dur: map[string]*vfile{}}
}

// Ops returns the number of mutating operations performed so far.
func (f *FS) Ops() int { return f.ops }

// Crashed reports whether the armed crash has fired.
func (f *FS) Crashed() bool { return f.crashed }

// CrashAfter arms the countdown: the n-th mutating operation from now fails
// with ErrInjected and the FS stays dead until Reboot.
func (f *FS) CrashAfter(n int) { f.budget = n }

// Reboot starts the next process: the visible state is rebuilt from what was
// durable — files whose directory entry survived the last SyncDir, each with
// its synced content plus the Mode-selected fraction of its unsynced tail —
// and the FS accepts operations again, with no further crash armed.
func (f *FS) Reboot() {
	vis := map[string]*vfile{}
	for name, old := range f.dur {
		keep := old.synced
		pending := len(old.data) - old.synced
		switch f.mode {
		case KeepHalf:
			h := pending / 2
			if h > 0 && h%2 == 0 {
				h--
			}
			keep += h
		case KeepAllButOne:
			if pending > 0 {
				keep += pending - 1
			}
		}
		nf := &vfile{data: append([]byte(nil), old.data[:keep]...), synced: keep}
		vis[name] = nf
	}
	f.vis = vis
	f.dur = map[string]*vfile{}
	for name, file := range vis {
		f.dur[name] = file
	}
	f.crashed = false
	f.budget = -1
}

// op accounts one mutating operation and fires the armed crash.
func (f *FS) op() error {
	if f.crashed {
		return fmt.Errorf("operation after crash: %w", ErrInjected)
	}
	f.ops++
	if f.budget > 0 {
		f.budget--
		if f.budget == 0 {
			f.crashed = true
			return fmt.Errorf("crash at operation %d: %w", f.ops, ErrInjected)
		}
	}
	return nil
}

func (f *FS) alive() error {
	if f.crashed {
		return fmt.Errorf("operation after crash: %w", ErrInjected)
	}
	return nil
}

// MkdirAll implements durable.FS; directories are implicit.
func (f *FS) MkdirAll(string) error { return f.alive() }

// Create implements durable.FS.
func (f *FS) Create(name string) (durable.File, error) {
	if err := f.op(); err != nil {
		return nil, err
	}
	file := &vfile{}
	f.vis[name] = file
	return &handle{fs: f, name: name, file: file}, nil
}

// Append implements durable.FS.
func (f *FS) Append(name string) (durable.File, error) {
	if err := f.alive(); err != nil {
		return nil, err
	}
	file, ok := f.vis[name]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	return &handle{fs: f, name: name, file: file}, nil
}

// Open implements durable.FS.
func (f *FS) Open(name string) (durable.File, error) {
	if err := f.alive(); err != nil {
		return nil, err
	}
	file, ok := f.vis[name]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	return &handle{fs: f, name: name, file: file, readonly: true}, nil
}

// ReadDir implements durable.FS.
func (f *FS) ReadDir(dir string) ([]string, error) {
	if err := f.alive(); err != nil {
		return nil, err
	}
	var names []string
	for name := range f.vis {
		if filepath.Dir(name) == dir {
			names = append(names, filepath.Base(name))
		}
	}
	sort.Strings(names)
	return names, nil
}

// Rename implements durable.FS. The move is visible immediately but durable
// only after SyncDir: a crash in between reverts it.
func (f *FS) Rename(oldname, newname string) error {
	if err := f.op(); err != nil {
		return err
	}
	file, ok := f.vis[oldname]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldname, Err: fs.ErrNotExist}
	}
	delete(f.vis, oldname)
	f.vis[newname] = file
	return nil
}

// Remove implements durable.FS.
func (f *FS) Remove(name string) error {
	if err := f.op(); err != nil {
		return err
	}
	if _, ok := f.vis[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(f.vis, name)
	return nil
}

// Truncate implements durable.FS.
func (f *FS) Truncate(name string, size int64) error {
	if err := f.op(); err != nil {
		return err
	}
	file, ok := f.vis[name]
	if !ok {
		return &fs.PathError{Op: "truncate", Path: name, Err: fs.ErrNotExist}
	}
	if size < 0 || size > int64(len(file.data)) {
		return &fs.PathError{Op: "truncate", Path: name, Err: fmt.Errorf("size %d out of range", size)}
	}
	file.data = file.data[:size]
	if file.synced > int(size) {
		file.synced = int(size)
	}
	return nil
}

// SyncDir implements durable.FS: the current namespace becomes the durable
// one.
func (f *FS) SyncDir(string) error {
	if err := f.op(); err != nil {
		return err
	}
	f.dur = make(map[string]*vfile, len(f.vis))
	for name, file := range f.vis {
		f.dur[name] = file
	}
	return nil
}

// handle is an open file. Writes append (the only pattern the durable
// package uses); reads walk the visible content.
type handle struct {
	fs       *FS
	name     string
	file     *vfile
	readonly bool
	pos      int
	closed   bool
}

func (h *handle) Read(p []byte) (int, error) {
	if err := h.fs.alive(); err != nil {
		return 0, err
	}
	if h.closed {
		return 0, fs.ErrClosed
	}
	if h.pos >= len(h.file.data) {
		return 0, io.EOF
	}
	n := copy(p, h.file.data[h.pos:])
	h.pos += n
	return n, nil
}

func (h *handle) Write(p []byte) (int, error) {
	if h.readonly {
		return 0, fmt.Errorf("iofault: write to read-only handle %s", h.name)
	}
	if h.closed {
		return 0, fs.ErrClosed
	}
	if err := h.fs.op(); err != nil {
		return 0, err
	}
	h.file.data = append(h.file.data, p...)
	return len(p), nil
}

// Sync makes the file's content durable up to its current length.
func (h *handle) Sync() error {
	if h.closed {
		return fs.ErrClosed
	}
	if err := h.fs.op(); err != nil {
		return err
	}
	h.file.synced = len(h.file.data)
	return nil
}

// Close releases the handle. Closing makes nothing durable — like the real
// thing.
func (h *handle) Close() error {
	if err := h.fs.alive(); err != nil {
		return err
	}
	if h.closed {
		return fs.ErrClosed
	}
	h.closed = true
	return nil
}

// Writer is a minimal fault-injecting io.Writer for stream-journal code:
// the FailAt-th Write call fails with ErrInjected; Short additionally lets
// it write half the buffer before failing (a short write).
type Writer struct {
	W      io.Writer
	FailAt int // 1-based Write call that fails; 0 = never
	Short  bool

	calls int
}

func (w *Writer) Write(p []byte) (int, error) {
	w.calls++
	if w.FailAt != 0 && w.calls >= w.FailAt {
		if w.Short && len(p) > 1 {
			n, err := w.W.Write(p[:len(p)/2])
			if err != nil {
				return n, err
			}
			return n, fmt.Errorf("short write: %w", ErrInjected)
		}
		return 0, fmt.Errorf("write failed: %w", ErrInjected)
	}
	return w.W.Write(p)
}
