package iofault

import (
	"errors"
	"io"
	"testing"
)

func write(t *testing.T, f interface{ Write([]byte) (int, error) }, data string) {
	t.Helper()
	if _, err := f.Write([]byte(data)); err != nil {
		t.Fatal(err)
	}
}

func content(t *testing.T, fs *FS, name string) string {
	t.Helper()
	f, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	return string(data)
}

// TestRebootDurability pins the power-loss model: synced bytes of a
// SyncDir'd file survive Reboot, unsynced bytes and un-SyncDir'd namespace
// changes do not.
func TestRebootDurability(t *testing.T) {
	fs := New(KeepNone)
	f, err := fs.Create("d/a")
	if err != nil {
		t.Fatal(err)
	}
	write(t, f, "durable")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	write(t, f, " lost") // never synced
	f.Close()

	g, err := fs.Create("d/b") // created after the SyncDir
	if err != nil {
		t.Fatal(err)
	}
	write(t, g, "gone")
	g.Sync()
	g.Close()

	fs.Reboot()
	if got := content(t, fs, "d/a"); got != "durable" {
		t.Fatalf("d/a reads %q after reboot, want synced prefix only", got)
	}
	if _, err := fs.Open("d/b"); err == nil {
		t.Fatal("un-SyncDir'd create survived reboot")
	}
}

// TestRebootRename pins rename semantics: an unsynced rename reverts, a
// SyncDir'd one sticks — the property atomic file replacement is built on.
func TestRebootRename(t *testing.T) {
	for _, synced := range []bool{false, true} {
		fs := New(KeepNone)
		f, _ := fs.Create("d/x.tmp")
		write(t, f, "new")
		f.Sync()
		f.Close()
		if err := fs.SyncDir("d"); err != nil {
			t.Fatal(err)
		}
		if err := fs.Rename("d/x.tmp", "d/x"); err != nil {
			t.Fatal(err)
		}
		if synced {
			if err := fs.SyncDir("d"); err != nil {
				t.Fatal(err)
			}
		}
		fs.Reboot()
		_, errX := fs.Open("d/x")
		_, errTmp := fs.Open("d/x.tmp")
		if synced && (errX != nil || errTmp == nil) {
			t.Fatal("SyncDir'd rename did not survive reboot")
		}
		if !synced && (errX == nil || errTmp != nil) {
			t.Fatal("unsynced rename survived reboot")
		}
	}
}

// TestCrashAfter pins the countdown contract: the armed op fails with
// ErrInjected and no effect, everything after it fails too, Reboot revives.
func TestCrashAfter(t *testing.T) {
	fs := New(KeepNone)
	f, _ := fs.Create("d/a")
	f.Sync()
	fs.SyncDir("d")
	f.Close()

	fs.CrashAfter(1)
	if _, err := fs.Create("d/b"); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed op failed with %v, want ErrInjected", err)
	}
	if !fs.Crashed() {
		t.Fatal("crash did not latch")
	}
	if _, err := fs.Open("d/a"); !errors.Is(err, ErrInjected) {
		t.Fatal("reads still work after the crash")
	}
	fs.Reboot()
	if _, err := fs.Open("d/a"); err != nil {
		t.Fatalf("durable file unreadable after reboot: %v", err)
	}
	if _, err := fs.Open("d/b"); err == nil {
		t.Fatal("the failed create left a file behind")
	}
}

// TestTornModes pins how much of an unsynced tail each mode keeps.
func TestTornModes(t *testing.T) {
	cases := []struct {
		mode Mode
		want string
	}{
		{KeepNone, "sync"},
		{KeepHalf, "syncabc"},        // 6 pending → half 3 (already odd)
		{KeepAllButOne, "syncabcde"}, // 6 pending → 5
	}
	for _, c := range cases {
		fs := New(c.mode)
		f, _ := fs.Create("d/a")
		write(t, f, "sync")
		f.Sync()
		fs.SyncDir("d")
		write(t, f, "abcdef")
		f.Close()
		fs.Reboot()
		if got := content(t, fs, "d/a"); got != c.want {
			t.Fatalf("mode %d keeps %q, want %q", c.mode, got, c.want)
		}
	}
}
