package core

import "sync"

// PlanShare is the epoch-keyed exchange of plan-scoped caches: idle
// PlanCaches, keyed by the ItemIndex (one pinned step prefix — one epoch of
// one run) they were built against, handed from one query session to the
// next. PR 8 attached one PlanCache per engine worker, so a worker's share
// of a batch amortized closures, chain products and visibility rows; the
// share extends the amortization across batches and across sessions — the
// second batch at the same epoch starts with every closure and chain product
// the first one paid for.
//
// A PlanCache itself stays confined to one QuerySession (its maps are
// unlocked); the share never lets two sessions hold the same cache at once.
// Acquire transfers ownership out of the share, Release transfers it back —
// the locking lives here, at the handoff, not on the query path.
//
// Caches are keyed by ItemIndex identity, not epoch number: node IDs and
// item rows cached by a plan are only meaningful against the exact index
// that minted them, and two runs at the same epoch number are different
// universes. Index-free caches (closures only — closures never depend on the
// item universe) share under the nil key. The zero value is ready to use.
type PlanShare struct {
	mu sync.Mutex

	// idle holds the caches currently owned by the share, per index. The
	// nil key pools index-free caches.
	idle map[*ItemIndex][]*PlanCache

	// order tracks the distinct non-nil indexes, oldest first, so the share
	// forgets stale epochs instead of growing with every producer step.
	order []*ItemIndex
}

// maxShareIndexes bounds how many distinct item indexes (epochs) the share
// retains caches for. Live serving touches one index per published epoch;
// retaining a few tolerates queries racing a producer without keeping every
// historical epoch's caches alive.
const maxShareIndexes = 4

// maxIdlePerIndex bounds the idle caches retained per index. One engine
// batch parks at most one cache per worker; the bound only stops a pile-up
// when far more sessions release than ever acquire.
const maxIdlePerIndex = 16

// Acquire hands out a cache keyed to idx: an idle one if the share has one
// (warm — it keeps everything its previous sessions computed), a fresh one
// otherwise. The caller owns the cache until Release.
func (ps *PlanShare) Acquire(idx *ItemIndex) *PlanCache {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if pcs := ps.idle[idx]; len(pcs) > 0 {
		pc := pcs[len(pcs)-1]
		ps.idle[idx] = pcs[:len(pcs)-1]
		return pc
	}
	ps.admit(idx)
	return newPlanCache(idx)
}

// Release returns a cache to the share for the next session at its index.
// Caches keyed to an index the share has already forgotten (or evicts now)
// are dropped; releasing nil is a no-op, so callers can release whatever a
// session detached without inspecting it.
func (ps *PlanShare) Release(pc *PlanCache) {
	if pc == nil {
		return
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if pc.idx != nil && !ps.tracked(pc.idx) {
		// The index was evicted while the cache was out — its epoch is
		// stale, don't resurrect it.
		return
	}
	if len(ps.idle[pc.idx]) >= maxIdlePerIndex {
		return
	}
	if ps.idle == nil {
		ps.idle = map[*ItemIndex][]*PlanCache{}
	}
	ps.idle[pc.idx] = append(ps.idle[pc.idx], pc)
}

// admit records a (possibly new) index, evicting the oldest index — and its
// idle caches — once more than maxShareIndexes are tracked. The nil key is
// never evicted: index-free closures stay valid forever.
func (ps *PlanShare) admit(idx *ItemIndex) {
	if idx == nil || ps.tracked(idx) {
		return
	}
	ps.order = append(ps.order, idx)
	if len(ps.order) > maxShareIndexes {
		old := ps.order[0]
		ps.order = ps.order[1:]
		delete(ps.idle, old)
	}
}

func (ps *PlanShare) tracked(idx *ItemIndex) bool {
	for _, t := range ps.order {
		if t == idx {
			return true
		}
	}
	return false
}

// IdleCaches reports how many caches the share currently holds for idx —
// an observability probe for tests and metrics, not a scheduling input.
func (ps *PlanShare) IdleCaches(idx *ItemIndex) int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return len(ps.idle[idx])
}
