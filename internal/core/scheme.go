package core

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/prodgraph"
	"repro/internal/workflow"
)

// Scheme is the view-adaptive dynamic labeling scheme (φr, φv, π) for one
// strictly linear-recursive workflow specification. It holds the static
// preprocessing of Section 4.1: the production graph with its (k, i) edge
// numbering and the fixed enumeration of its vertex-disjoint cycles.
type Scheme struct {
	Spec   *workflow.Specification
	Graph  *prodgraph.Graph
	Cycles []prodgraph.Cycle

	// basic marks a scheme built by NewSchemeBasic: runs are labeled with the
	// basic parse tree (no recursive nodes), which works for every safe
	// specification but yields labels whose length grows with the nesting
	// depth of the run (Theorem 1) instead of logarithmically (Theorem 8).
	basic bool

	codec *Codec
}

// NewScheme validates the specification, builds the production graph and
// fixes the cycle enumeration. It fails when the grammar is not strictly
// linear-recursive, because compact dynamic labeling is then impossible in
// general (Theorems 5 and 6); see NewSchemeBasic for the fallback that trades
// compactness for generality.
func NewScheme(spec *workflow.Specification) (*Scheme, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	pg := prodgraph.New(spec.Grammar)
	if !pg.IsStrictlyLinearRecursive() {
		return nil, fmt.Errorf("core: compact dynamic labeling is not possible (Theorem 6): %w", faults.ErrNotLinearRecursive)
	}
	cycles, err := pg.Cycles()
	if err != nil {
		return nil, err
	}
	s := &Scheme{Spec: spec, Graph: pg, Cycles: cycles}
	s.codec = NewCodec(s)
	return s, nil
}

// NewSchemeBasic builds the fallback scheme of Theorem 1: runs are labeled
// with basic parse trees, so the scheme applies to every safe specification
// (including grammars that are not strictly linear-recursive) at the price of
// data labels whose length is proportional to the nesting depth of the run.
// Views are still labeled and decoded exactly as in the compact scheme.
func NewSchemeBasic(spec *workflow.Specification) (*Scheme, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	pg := prodgraph.New(spec.Grammar)
	s := &Scheme{Spec: spec, Graph: pg, basic: true}
	s.codec = NewCodec(s)
	return s, nil
}

// IsBasic reports whether the scheme labels runs with basic (uncompressed)
// parse trees.
func (s *Scheme) IsBasic() bool { return s.basic }

// Codec returns the bit-level codec for this scheme's data labels.
func (s *Scheme) Codec() *Codec { return s.codec }

// Cycle returns the s-th cycle (1-based).
func (s *Scheme) Cycle(idx int) (prodgraph.Cycle, error) {
	if idx < 1 || idx > len(s.Cycles) {
		return prodgraph.Cycle{}, fmt.Errorf("core: no cycle %d", idx)
	}
	return s.Cycles[idx-1], nil
}

// cycleOf returns the cycle index and offset of a recursive module. In basic
// mode no module is treated as recursive, so the compressed parse tree
// degenerates into the basic parse tree.
func (s *Scheme) cycleOf(module string) (cycle, offset int, ok bool) {
	if s.basic {
		return 0, 0, false
	}
	return s.Graph.CycleOf(module)
}

// isRecursive reports whether the module should be placed under a recursive
// node of the compressed parse tree.
func (s *Scheme) isRecursive(module string) bool {
	if s.basic {
		return false
	}
	return s.Graph.IsRecursive(module)
}

// sameCycle reports whether the two modules lie on the same cycle of the
// production graph.
func (s *Scheme) sameCycle(a, b string) bool {
	if s.basic {
		return false
	}
	sa, _, oka := s.Graph.CycleOf(a)
	sb, _, okb := s.Graph.CycleOf(b)
	return oka && okb && sa == sb
}

// moduleAtCycleOffset returns the module whose outgoing cycle edge is the
// offset-th edge (1-based, with wraparound) of cycle s.
func (s *Scheme) moduleAtCycleOffset(cycle, offset int) (workflow.Module, error) {
	c, err := s.Cycle(cycle)
	if err != nil {
		return workflow.Module{}, err
	}
	name := c.Modules[(offset-1)%c.Len()]
	return s.Spec.Grammar.Modules[name], nil
}
