// Package core implements FVL, the view-adaptive dynamic labeling scheme of
// the paper (Sections 4.1-4.5): data items of a run are labeled online, as
// they are produced, with compact labels derived from the compressed parse
// tree of the derivation; views are labeled statically with the reachability
// matrices {λ*(S), I, O, Z}; and a decoding predicate combines two data
// labels with one view label to answer "does d2 depend on d1 w.r.t. this
// view?" in constant time.
package core

import (
	"fmt"
	"strings"
)

// EdgeLabel identifies one edge of the compressed parse tree (Section 4.2.2).
// A non-recursive edge is identified by the production-graph edge (K, I): the
// child is the I-th right-hand-side node of production K. A recursive edge
// belongs to a recursive node that unfolds cycle S of the production graph
// starting from its T-th edge; the child is the I-th unfolded composite
// module.
type EdgeLabel struct {
	Recursive bool
	K         int // production index (non-recursive form)
	S         int // cycle index (recursive form)
	T         int // starting edge within the cycle (recursive form)
	I         int // child position (both forms, 1-based)
}

// NonRecursiveEdge builds a (k, i) edge label.
func NonRecursiveEdge(k, i int) EdgeLabel { return EdgeLabel{K: k, I: i} }

// RecursiveEdge builds an (s, t, i) edge label.
func RecursiveEdge(s, t, i int) EdgeLabel { return EdgeLabel{Recursive: true, S: s, T: t, I: i} }

// String renders the label as "(k,i)" or "(s,t,i)".
func (e EdgeLabel) String() string {
	if e.Recursive {
		return fmt.Sprintf("(%d,%d,%d)", e.S, e.T, e.I)
	}
	return fmt.Sprintf("(%d,%d)", e.K, e.I)
}

// PortLabel is the label of an input or output port of the run: the sequence
// of edge labels on the path from the root of the compressed parse tree to
// the node at which the port was first created, followed by the port index at
// that node (Section 4.2.2).
type PortLabel struct {
	Path []EdgeLabel
	Port int
}

// Clone returns a deep copy.
func (p *PortLabel) Clone() *PortLabel {
	if p == nil {
		return nil
	}
	return &PortLabel{Path: append([]EdgeLabel(nil), p.Path...), Port: p.Port}
}

// String renders the label as "{(1,3),(1,1,5),2}".
func (p *PortLabel) String() string {
	if p == nil {
		return "-"
	}
	parts := make([]string, 0, len(p.Path)+1)
	for _, e := range p.Path {
		parts = append(parts, e.String())
	}
	parts = append(parts, fmt.Sprintf("%d", p.Port))
	return "{" + strings.Join(parts, ",") + "}"
}

// DataLabel is the label φr(d) of a data item d = (o, i): the pair of the
// producing output port's label and the consuming input port's label. Initial
// inputs of the run have Out == nil; final outputs have In == nil.
type DataLabel struct {
	Out *PortLabel
	In  *PortLabel
}

// Clone returns a deep copy.
func (d *DataLabel) Clone() *DataLabel {
	if d == nil {
		return nil
	}
	return &DataLabel{Out: d.Out.Clone(), In: d.In.Clone()}
}

// IsInitialInput reports whether the label belongs to an initial input of the
// run (no producing port).
func (d *DataLabel) IsInitialInput() bool { return d.Out == nil && d.In != nil }

// IsFinalOutput reports whether the label belongs to a final output of the
// run (no consuming port).
func (d *DataLabel) IsFinalOutput() bool { return d.Out != nil && d.In == nil }

// String renders the label as "(out, in)".
func (d *DataLabel) String() string {
	return fmt.Sprintf("(%s, %s)", d.Out.String(), d.In.String())
}

// commonPrefixLen returns the number of leading edge labels shared by the two
// paths; the codec factors this prefix out (Section 4.2.2).
func commonPrefixLen(a, b []EdgeLabel) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}
