package core

import (
	"fmt"

	"repro/internal/run"
)

// FrontierPaths returns the parse-tree paths of the run's unexpanded
// composite module instances — exactly the labeler state a future derivation
// step can read. OnStep consults instPath only for the instance it expands
// (always an unexpanded composite) and writes fresh paths for the children it
// creates, so persisting the frontier paths alongside the assigned labels is
// sufficient to continue labeling a restored run without replaying it.
func (l *RunLabeler) FrontierPaths(r *run.Run) (map[int][]EdgeLabel, error) {
	out := map[int][]EdgeLabel{}
	for _, id := range r.Frontier() {
		path, ok := l.instPath[id]
		if !ok {
			return nil, fmt.Errorf("core: frontier instance %d was never placed in the parse tree", id)
		}
		// Paths may be nil for the root of a non-recursive start module;
		// normalize so callers can encode them uniformly.
		if path == nil {
			path = []EdgeLabel{}
		}
		out[id] = append([]EdgeLabel(nil), path...)
	}
	return out, nil
}

// RestoreRunLabeler rebuilds a labeler from persisted state: the labels
// assigned to the first len(labels) data items and the parse-tree paths of
// the unexpanded frontier instances (see FrontierPaths). Labels must be
// contiguous from item ID 1 — the invariant the live session publishes by.
// The inputs are expected to have passed the codec's strict decoders already
// (labelstore decodes both through Codec.Decode/DecodePath); this constructor
// only re-checks the cheap structural facts.
func (s *Scheme) RestoreRunLabeler(labels []*DataLabel, paths map[int][]EdgeLabel) (*RunLabeler, error) {
	l := s.NewRunLabeler()
	for i, d := range labels {
		if d == nil {
			return nil, fmt.Errorf("core: restored label %d is nil", i+1)
		}
		l.labels[i+1] = d
	}
	for id, path := range paths {
		if id < 0 {
			return nil, fmt.Errorf("core: restored path for negative instance %d", id)
		}
		l.instPath[id] = append([]EdgeLabel(nil), path...)
	}
	return l, nil
}
