package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/view"
	"repro/internal/workloads"
)

// TestDecodeMatchesOracleOnBioAID exercises the full pipeline on the workload
// that drives the paper's main experiments: random runs of the BioAID-like
// grammar, random grey-box and black-box views of several sizes, all three
// view-label variants.
func TestDecodeMatchesOracleOnBioAID(t *testing.T) {
	spec := workloads.BioAID()
	scheme, err := core.NewScheme(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, labeler := labeledRun(t, scheme, 31, 800)

	rng := rand.New(rand.NewSource(32))
	views := []*view.View{view.Default(spec)}
	for _, n := range []int{2, 8, 16} {
		for _, mode := range []workloads.DependencyMode{workloads.GreyBox, workloads.BlackBox} {
			v, err := workloads.RandomView(spec, workloads.ViewOptions{
				Name:       fmt.Sprintf("%v-%d", mode, n),
				Composites: n,
				Mode:       mode,
				Rand:       rng,
			})
			if err != nil {
				t.Fatalf("view %v-%d: %v", mode, n, err)
			}
			views = append(views, v)
		}
	}
	for _, v := range views {
		for _, variant := range allVariants {
			pairs := 400
			if variant == core.VariantQueryEfficient {
				pairs = 4000
			}
			vl, err := scheme.LabelView(v, variant)
			if err != nil {
				t.Fatalf("labeling %q (%v): %v", v.Name, variant, err)
			}
			t.Run(fmt.Sprintf("%s/%v", v.Name, variant), func(t *testing.T) {
				checkAgainstOracle(t, vl, labeler, r, v, pairs, 33)
			})
		}
	}
}

// TestDecodeMatchesOracleOnSynthetic covers the synthetic family of Figure 26
// across its four parameters, including deep nesting and longer recursions.
func TestDecodeMatchesOracleOnSynthetic(t *testing.T) {
	base := workloads.DefaultSyntheticParams()
	base.WorkflowSize = 8 // keep runs small enough for exhaustive oracle checks

	cases := []workloads.SyntheticParams{base}
	deep := base
	deep.NestingDepth = 6
	cases = append(cases, deep)
	long := base
	long.RecursionLength = 3
	cases = append(cases, long)
	wide := base
	wide.ModuleDegree = 6
	cases = append(cases, wide)

	for ci, params := range cases {
		params := params
		t.Run(params.String(), func(t *testing.T) {
			spec := workloads.Synthetic(params)
			scheme, err := core.NewScheme(spec)
			if err != nil {
				t.Fatal(err)
			}
			r, err := workloads.DeepRun(spec, workloads.RunOptions{TargetSize: 400, Rand: rand.New(rand.NewSource(int64(50 + ci)))})
			if err != nil {
				t.Fatal(err)
			}
			labeler, err := scheme.LabelRun(r)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(60 + ci)))
			views := []*view.View{view.Default(spec)}
			v, err := workloads.RandomView(spec, workloads.ViewOptions{
				Name:       "grey",
				Composites: params.NestingDepth * params.RecursionLength / 2,
				Mode:       workloads.GreyBox,
				Rand:       rng,
			})
			if err != nil {
				t.Fatal(err)
			}
			views = append(views, v)
			for _, v := range views {
				vl, err := scheme.LabelView(v, core.VariantQueryEfficient)
				if err != nil {
					t.Fatalf("labeling %q: %v", v.Name, err)
				}
				checkAgainstOracle(t, vl, labeler, r, v, 3000, int64(70+ci))
			}
		})
	}
}
