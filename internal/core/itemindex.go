package core

import (
	"repro/internal/boolmat"
)

// ItemIndex is the row-oriented view of one pinned item universe: every data
// label of items 1..n, grouped by the compressed-parse-tree node its port
// labels point at. It is what turns the point decoder into a set scanner —
// the decoding matrix of Algorithm 2 depends only on the two labels' paths,
// so all items sharing a node are answered by one matrix and one bitset
// row/column extraction instead of one decode each.
//
// An ItemIndex is immutable after BuildItemIndex and safe for concurrent
// use; it holds no per-view state (visibility is cached per plan, see
// PlanCache). Item IDs are 1-based, matching runs and live prefixes, so the
// bitset rows the scans produce are 1×(n+1) with bit 0 permanently clear.
type ItemIndex struct {
	epoch uint64
	n     int
	items []itemRef   // items[id-1]
	nodes []indexNode // interned paths; node 0 is the root (empty path)

	// srcGroups groups the intermediate items (Out and In both present) by
	// the node of their producing port — the d1 candidates of a Deps scan.
	// dstGroups groups the same items by the node of their consuming port —
	// the d2 candidates of a RevDeps scan. initials and finals hold the
	// boundary items (no producing / no consuming port), which the decoder
	// treats by dedicated cases rather than by path.
	srcGroups []portGroup
	dstGroups []portGroup
	initials  []member
	finals    []member

	initialsRow *boolmat.Matrix // 1×(n+1) row of the initial-input item IDs
}

// itemRef is the interned form of one data label: node IDs instead of paths,
// ports flattened. A node of -1 encodes a nil port label.
type itemRef struct {
	ok      bool
	out, in int32
	outPort int32
	inPort  int32
}

type indexNode struct {
	path     []EdgeLabel
	children map[EdgeLabel]int32
}

// member is one item's slot in a scan group: the port index that selects its
// bit in the group's decode matrix, and the node of its other port, whose
// visibility must also hold for the item to be answerable.
type member struct {
	item    int32
	port    int32
	visNode int32 // -1 when the other port is absent
}

type portGroup struct {
	node    int32
	members []member
}

// BuildItemIndex interns the labels of items 1..n (resolved through label,
// which may report holes — unresolved IDs simply never appear in any answer)
// into an ItemIndex. The epoch tags the universe the index was built from: a
// live prefix's epoch, or 0 for a completed run.
func BuildItemIndex(epoch uint64, n int, label func(itemID int) (*DataLabel, bool)) *ItemIndex {
	if n < 0 {
		n = 0
	}
	idx := &ItemIndex{
		epoch: epoch,
		n:     n,
		items: make([]itemRef, n),
		nodes: []indexNode{{}},
	}
	srcByNode := map[int32][]member{}
	dstByNode := map[int32][]member{}
	for id := 1; id <= n; id++ {
		d, ok := label(id)
		if !ok || d == nil || (d.Out == nil && d.In == nil) {
			continue
		}
		ref := itemRef{ok: true, out: -1, in: -1}
		if d.Out != nil {
			ref.out = idx.intern(d.Out.Path)
			ref.outPort = int32(d.Out.Port)
		}
		if d.In != nil {
			ref.in = idx.intern(d.In.Path)
			ref.inPort = int32(d.In.Port)
		}
		idx.items[id-1] = ref
		switch {
		case ref.out < 0:
			idx.initials = append(idx.initials, member{item: int32(id), port: ref.inPort, visNode: ref.in})
		case ref.in < 0:
			idx.finals = append(idx.finals, member{item: int32(id), port: ref.outPort, visNode: ref.out})
		default:
			srcByNode[ref.out] = append(srcByNode[ref.out], member{item: int32(id), port: ref.outPort, visNode: ref.in})
			dstByNode[ref.in] = append(dstByNode[ref.in], member{item: int32(id), port: ref.inPort, visNode: ref.out})
		}
	}
	// Flatten the group maps in node-ID order so scans are deterministic.
	for node := int32(0); int(node) < len(idx.nodes); node++ {
		if ms, ok := srcByNode[node]; ok {
			idx.srcGroups = append(idx.srcGroups, portGroup{node: node, members: ms})
		}
		if ms, ok := dstByNode[node]; ok {
			idx.dstGroups = append(idx.dstGroups, portGroup{node: node, members: ms})
		}
	}
	idx.initialsRow = boolmat.New(1, n+1)
	for _, mb := range idx.initials {
		idx.initialsRow.Set(0, int(mb.item), true)
	}
	return idx
}

// intern walks (extending as needed) the path trie and returns the node ID
// of the path. Items of one run massively share path prefixes, so the trie
// stays small and every distinct tree node is stored once.
func (idx *ItemIndex) intern(path []EdgeLabel) int32 {
	cur := int32(0)
	for i, e := range path {
		child, ok := idx.nodes[cur].children[e]
		if !ok {
			child = int32(len(idx.nodes))
			idx.nodes = append(idx.nodes, indexNode{path: path[:i+1]})
			if idx.nodes[cur].children == nil {
				idx.nodes[cur].children = map[EdgeLabel]int32{}
			}
			idx.nodes[cur].children[e] = child
		}
		cur = child
	}
	return cur
}

// Epoch returns the epoch of the pinned universe the index was built from.
func (idx *ItemIndex) Epoch() uint64 { return idx.epoch }

// Items returns n, the size of the item-ID universe (IDs are 1..n).
func (idx *ItemIndex) Items() int { return idx.n }

// Has reports whether the index holds a label for the item ID.
func (idx *ItemIndex) Has(itemID int) bool {
	return itemID >= 1 && itemID <= idx.n && idx.items[itemID-1].ok
}

// InitialsRow returns the bitset row of the initial-input item IDs (the
// candidates an Explain query projects onto). The returned matrix is shared
// and must be treated as read-only.
func (idx *ItemIndex) InitialsRow() *boolmat.Matrix { return idx.initialsRow }

func (idx *ItemIndex) ref(itemID int) (itemRef, bool) {
	if itemID < 1 || itemID > idx.n {
		return itemRef{}, false
	}
	r := idx.items[itemID-1]
	return r, r.ok
}

func (idx *ItemIndex) path(node int32) []EdgeLabel { return idx.nodes[node].path }

// lookup returns the interned node of the path without extending the trie —
// the read-only sibling of intern, safe on a shared index after build. A
// miss (the path was never interned, e.g. a label owned by another shard's
// index) reports -1, false.
func (idx *ItemIndex) lookup(path []EdgeLabel) (int32, bool) {
	cur := int32(0)
	for _, e := range path {
		child, ok := idx.nodes[cur].children[e]
		if !ok {
			return -1, false
		}
		cur = child
	}
	return cur, true
}
