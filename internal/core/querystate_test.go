package core

// Internal tests for the per-query closure cache invariant: closures computed
// on the graph-search path (VariantSpaceEfficient) are scoped to one query.
// Reusing them across queries would make the space-efficient variant cheat in
// the Figure 20 experiment, which charges it the full graph-search cost per
// query.

import (
	"math/rand"
	"testing"

	"repro/internal/safety"
	"repro/internal/view"
	"repro/internal/workloads"
)

// spaceEfficientQuery returns a space-efficient view label together with a
// label pair whose query is answered via closureFor (i.e. it populates the
// closure cache).
func spaceEfficientQuery(t *testing.T) (*ViewLabel, *DataLabel, *DataLabel) {
	t.Helper()
	spec := workloads.PaperExample()
	scheme, err := NewScheme(spec)
	if err != nil {
		t.Fatalf("building scheme: %v", err)
	}
	r, err := workloads.RandomRun(spec, workloads.RunOptions{TargetSize: 120, Rand: rand.New(rand.NewSource(21))})
	if err != nil {
		t.Fatalf("deriving run: %v", err)
	}
	labeler, err := scheme.LabelRun(r)
	if err != nil {
		t.Fatalf("labeling run: %v", err)
	}
	vl, err := scheme.LabelView(view.Default(spec), VariantSpaceEfficient)
	if err != nil {
		t.Fatalf("labeling view: %v", err)
	}
	for _, d1 := range r.Items {
		for _, d2 := range r.Items {
			l1, _ := labeler.Label(d1.ID)
			l2, _ := labeler.Label(d2.ID)
			if _, err := vl.DependsOn(l1, l2); err != nil {
				t.Fatalf("DependsOn: %v", err)
			}
			if len(vl.closureCache) > 0 {
				return vl, l1, l2
			}
		}
	}
	t.Fatalf("no query populated the closure cache")
	return nil, nil, nil
}

func TestSpaceEfficientQueriesDoNotReuseClosures(t *testing.T) {
	vl, l1, l2 := spaceEfficientQuery(t)

	// Snapshot the closures the first query computed, then ask again: the
	// second query must recompute every closure from scratch.
	first := make(map[int]*safety.Closure, len(vl.closureCache))
	for k, cl := range vl.closureCache {
		first[k] = cl
	}
	if _, err := vl.DependsOn(l1, l2); err != nil {
		t.Fatalf("second DependsOn: %v", err)
	}
	if len(vl.closureCache) == 0 {
		t.Fatalf("second query did not populate the closure cache")
	}
	for k, cl := range vl.closureCache {
		if prev, ok := first[k]; ok && prev == cl {
			t.Fatalf("closure for production %d survived from the previous query", k)
		}
	}
}

func TestResetQueryStateDropsCacheForAllVariants(t *testing.T) {
	// The invariant is enforced unconditionally: even if a label of another
	// variant ever ends up with a populated cache, a new query must drop it.
	for _, variant := range []Variant{VariantSpaceEfficient, VariantDefault, VariantQueryEfficient} {
		vl := &ViewLabel{variant: variant, closureCache: map[int]*safety.Closure{1: nil}}
		vl.resetQueryState()
		if vl.closureCache != nil {
			t.Fatalf("resetQueryState kept the closure cache for variant %v", variant)
		}
	}
}
