package core

// Internal tests for the per-query closure cache invariant: closures computed
// on the graph-search path (VariantSpaceEfficient) are scoped to one query.
// Reusing them across queries would make the space-efficient variant cheat in
// the Figure 20 experiment, which charges it the full graph-search cost per
// query. Since the query-context refactor the cache lives in queryCtx, not in
// the view label, and queryCtx.begin drops it at the start of every query.

import (
	"math/rand"
	"testing"

	"repro/internal/safety"
	"repro/internal/view"
	"repro/internal/workloads"
)

// spaceEfficientQuery returns a space-efficient view label together with a
// label pair whose query is answered via closureFor (i.e. it populates the
// context's closure cache).
func spaceEfficientQuery(t *testing.T) (*ViewLabel, *DataLabel, *DataLabel) {
	t.Helper()
	spec := workloads.PaperExample()
	scheme, err := NewScheme(spec)
	if err != nil {
		t.Fatalf("building scheme: %v", err)
	}
	r, err := workloads.RandomRun(spec, workloads.RunOptions{TargetSize: 120, Rand: rand.New(rand.NewSource(21))})
	if err != nil {
		t.Fatalf("deriving run: %v", err)
	}
	labeler, err := scheme.LabelRun(r)
	if err != nil {
		t.Fatalf("labeling run: %v", err)
	}
	vl, err := scheme.LabelView(view.Default(spec), VariantSpaceEfficient)
	if err != nil {
		t.Fatalf("labeling view: %v", err)
	}
	qc := new(queryCtx)
	for _, d1 := range r.Items {
		for _, d2 := range r.Items {
			l1, _ := labeler.Label(d1.ID)
			l2, _ := labeler.Label(d2.ID)
			if _, err := vl.dependsOn(qc, l1, l2); err != nil {
				t.Fatalf("DependsOn: %v", err)
			}
			if len(qc.closures) > 0 {
				return vl, l1, l2
			}
		}
	}
	t.Fatalf("no query populated the closure cache")
	return nil, nil, nil
}

func TestSpaceEfficientQueriesDoNotReuseClosures(t *testing.T) {
	vl, l1, l2 := spaceEfficientQuery(t)

	// Run the query once, snapshot the closures it computed, then ask again
	// with the same (warm) context: the second query must recompute every
	// closure from scratch, because begin drops the cache entries.
	qc := new(queryCtx)
	if _, err := vl.dependsOn(qc, l1, l2); err != nil {
		t.Fatalf("first DependsOn: %v", err)
	}
	if len(qc.closures) == 0 {
		t.Fatalf("first query did not populate the closure cache")
	}
	first := make(map[int]*safety.Closure, len(qc.closures))
	for k, cl := range qc.closures {
		first[k] = cl
	}
	if _, err := vl.dependsOn(qc, l1, l2); err != nil {
		t.Fatalf("second DependsOn: %v", err)
	}
	if len(qc.closures) == 0 {
		t.Fatalf("second query did not populate the closure cache")
	}
	for k, cl := range qc.closures {
		if prev, ok := first[k]; ok && prev == cl {
			t.Fatalf("closure for production %d survived from the previous query", k)
		}
	}
}

func TestQueryContextBeginDropsClosuresAndRewindsScratch(t *testing.T) {
	qc := &queryCtx{closures: map[int]*safety.Closure{1: nil, 2: nil}}
	qc.take()
	qc.take()
	qc.begin()
	if len(qc.closures) != 0 {
		t.Fatalf("begin kept %d closure cache entries", len(qc.closures))
	}
	if qc.used != 0 {
		t.Fatalf("begin left the scratch arena at %d used slots", qc.used)
	}
}

func TestMaterializedVariantQueriesNeverTouchClosures(t *testing.T) {
	// The materialized variants answer every query from the label's matrices;
	// their hot path must be write-free, which shows up here as a closure
	// cache that stays empty no matter how many queries run.
	spec := workloads.PaperExample()
	scheme, err := NewScheme(spec)
	if err != nil {
		t.Fatalf("building scheme: %v", err)
	}
	r, err := workloads.RandomRun(spec, workloads.RunOptions{TargetSize: 120, Rand: rand.New(rand.NewSource(21))})
	if err != nil {
		t.Fatalf("deriving run: %v", err)
	}
	labeler, err := scheme.LabelRun(r)
	if err != nil {
		t.Fatalf("labeling run: %v", err)
	}
	for _, variant := range []Variant{VariantDefault, VariantQueryEfficient} {
		vl, err := scheme.LabelView(view.Default(spec), variant)
		if err != nil {
			t.Fatalf("labeling view (%v): %v", variant, err)
		}
		qc := new(queryCtx)
		for _, d1 := range r.Items {
			for _, d2 := range r.Items {
				l1, _ := labeler.Label(d1.ID)
				l2, _ := labeler.Label(d2.ID)
				if _, err := vl.dependsOn(qc, l1, l2); err != nil {
					t.Fatalf("DependsOn (%v): %v", variant, err)
				}
				if len(qc.closures) != 0 {
					t.Fatalf("variant %v wrote %d closures into the query context", variant, len(qc.closures))
				}
			}
		}
	}
}
