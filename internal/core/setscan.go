package core

import (
	"fmt"

	"repro/internal/boolmat"
	"repro/internal/faults"
)

// This file implements the set-oriented scans behind the query planner
// (internal/query): depsRow and revDepsRow answer a whole Deps(x)/RevDeps(x)
// query as one bitset row over an ItemIndex, instead of one point decode per
// candidate item. The key observation is the one Algorithm 2 is built on: the
// decoding matrix depends only on the two labels' tree-node paths, never on
// the ports. Grouping candidates by interned path node (ItemIndex) therefore
// reduces a set query to one matrix chain per group plus a row or column
// extraction per member.
//
// Set semantics versus point semantics: a point query against an invisible or
// unknown *target* errors, and so do the scans (ErrHiddenItem /
// ErrUnknownItem). A point query against a malformed or invisible *candidate*
// also errors — in a set answer such candidates are simply excluded, which is
// the only coherent reading of "the set of items y for which DependsOn
// answers (true, nil)". The differential oracle test in fvl pins this down.

// suffixProduct returns the I- or O-matrix chain product over path[from:],
// served from the plan cache when the context has one attached for idx. Cache
// hits return a matrix that is NOT in the scratch arena (it survives rewind);
// misses compute into scratch and clone into the cache.
func (vl *ViewLabel) suffixProduct(qc *queryCtx, idx *ItemIndex, node int32, path []EdgeLabel, from int, outputs bool) (*boolmat.Matrix, error) {
	pc := qc.plan
	if pc != nil && idx != nil && pc.idx == idx && node >= 0 {
		key := prodKey{vl, node, int32(from), outputs}
		if m, ok := pc.prods[key]; ok {
			return m, nil
		}
		m, err := vl.plainProduct(qc, path, from, outputs)
		if err != nil {
			return nil, err
		}
		cl := m.Clone()
		if pc.prods == nil {
			pc.prods = map[prodKey]*boolmat.Matrix{}
		}
		pc.prods[key] = cl
		return cl, nil
	}
	return vl.plainProduct(qc, path, from, outputs)
}

func (vl *ViewLabel) plainProduct(qc *queryCtx, path []EdgeLabel, from int, outputs bool) (*boolmat.Matrix, error) {
	if outputs {
		return vl.outputsProduct(qc, path, from)
	}
	return vl.inputsProduct(qc, path, from)
}

// nodeVisible is pathVisible over an interned node, cached per plan. A node
// of -1 (absent port side) is vacuously visible, matching pathVisible(nil).
func (vl *ViewLabel) nodeVisible(qc *queryCtx, idx *ItemIndex, node int32) bool {
	if node < 0 {
		return true
	}
	pc := qc.plan
	if pc != nil && pc.idx == idx {
		key := visKey{vl, node}
		if v, ok := pc.visible[key]; ok {
			return v
		}
		v := vl.pathVisible(idx.path(node))
		if pc.visible == nil {
			pc.visible = map[visKey]bool{}
		}
		pc.visible[key] = v
		return v
	}
	return vl.pathVisible(idx.path(node))
}

// visibleRow returns the 1×(idx.Items()+1) bitset row of the item IDs visible
// in vl's view, cached per plan. Callers must treat the result as read-only.
func (vl *ViewLabel) visibleRow(qc *queryCtx, idx *ItemIndex) *boolmat.Matrix {
	pc := qc.plan
	if pc != nil && pc.idx == idx {
		if m, ok := pc.visRows[vl]; ok {
			return m
		}
	}
	row := boolmat.New(1, idx.n+1)
	for i, r := range idx.items {
		if !r.ok {
			continue
		}
		if vl.nodeVisible(qc, idx, r.out) && vl.nodeVisible(qc, idx, r.in) {
			row.Set(0, i+1, true)
		}
	}
	if pc != nil && pc.idx == idx {
		if pc.visRows == nil {
			pc.visRows = map[*ViewLabel]*boolmat.Matrix{}
		}
		pc.visRows[vl] = row
	}
	return row
}

// scatter transfers one group's decode-matrix bits into the answer row: for
// every visible member whose matrix bit at (port, target) — or (target, port)
// when memberRows is false — is set, the member's item bit is set. Out-of-
// range ports exclude exactly the members whose point queries would have
// errored on safeGet.
func (vl *ViewLabel) scatter(qc *queryCtx, idx *ItemIndex, row, m *boolmat.Matrix, members []member, target int, memberRows bool) {
	if target < 0 {
		return
	}
	if memberRows {
		if target >= m.Cols() {
			return
		}
		for _, mb := range members {
			p := int(mb.port)
			if p >= 0 && p < m.Rows() && vl.nodeVisible(qc, idx, mb.visNode) && m.Get(p, target) {
				row.Set(0, int(mb.item), true)
			}
		}
		return
	}
	if target >= m.Rows() {
		return
	}
	for _, mb := range members {
		p := int(mb.port)
		if p >= 0 && p < m.Cols() && vl.nodeVisible(qc, idx, mb.visNode) && m.Get(target, p) {
			row.Set(0, int(mb.item), true)
		}
	}
}

// depsRow answers Deps(itemID) = {y : DependsOn(y, itemID) = (true, nil)} as
// a bitset row: the target is d2 of every point query, candidates are d1.
func (vl *ViewLabel) depsRow(qc *queryCtx, idx *ItemIndex, itemID int) (*boolmat.Matrix, error) {
	qc.begin()
	x, ok := idx.ref(itemID)
	if !ok {
		return nil, fmt.Errorf("core: item %d has no label in the index: %w", itemID, faults.ErrUnknownItem)
	}
	if !vl.nodeVisible(qc, idx, x.out) || !vl.nodeVisible(qc, idx, x.in) {
		return nil, fmt.Errorf("core: item %d is not visible in view %q: %w", itemID, vl.view.Name, faults.ErrHiddenItem)
	}
	row := boolmat.New(1, idx.n+1)
	if x.out < 0 {
		// Case I: nothing flows into an initial input.
		return row, nil
	}

	// Initial-input candidates: Case II (target is a final output, λ*(S)
	// answers directly) or Case III (one I-chain along the target's consuming
	// path answers every initial at once).
	if len(idx.initials) > 0 {
		var m *boolmat.Matrix
		var err error
		var target int
		if x.in < 0 {
			m, target = vl.start, int(x.outPort)
		} else {
			m, err = vl.suffixProduct(qc, idx, x.in, idx.path(x.in), 0, false)
			target = int(x.inPort)
		}
		if err == nil {
			vl.scatter(qc, idx, row, m, idx.initials, target, true)
		}
		qc.rewind()
	}

	// Final-output candidates never appear: Case I (d1.In == nil).

	// Intermediate candidates, one decode per producing-port group: Case IV
	// when the target is a final output, the main cases otherwise.
	for _, g := range idx.srcGroups {
		if !vl.nodeVisible(qc, idx, g.node) {
			continue
		}
		var m *boolmat.Matrix
		var err error
		var target int
		memberRows := true
		if x.in < 0 {
			m, err = vl.suffixProduct(qc, idx, g.node, idx.path(g.node), 0, true)
			target, memberRows = int(x.outPort), false
		} else {
			m, err = vl.decodeMainMatrix(qc, idx.path(g.node), idx.path(x.in),
				&pathPair{idx: idx, srcNode: g.node, dstNode: x.in})
			target = int(x.inPort)
		}
		if err == nil && m != nil {
			vl.scatter(qc, idx, row, m, g.members, target, memberRows)
		}
		qc.rewind()
	}
	return row, nil
}

// revDepsRow answers RevDeps(itemID) = {y : DependsOn(itemID, y) = (true,
// nil)} as a bitset row: the target is d1 of every point query.
func (vl *ViewLabel) revDepsRow(qc *queryCtx, idx *ItemIndex, itemID int) (*boolmat.Matrix, error) {
	qc.begin()
	x, ok := idx.ref(itemID)
	if !ok {
		return nil, fmt.Errorf("core: item %d has no label in the index: %w", itemID, faults.ErrUnknownItem)
	}
	if !vl.nodeVisible(qc, idx, x.out) || !vl.nodeVisible(qc, idx, x.in) {
		return nil, fmt.Errorf("core: item %d is not visible in view %q: %w", itemID, vl.view.Name, faults.ErrHiddenItem)
	}
	row := boolmat.New(1, idx.n+1)
	if x.in < 0 {
		// Case I: a final output has no dependents.
		return row, nil
	}

	// Final-output candidates: Case II (source is an initial input) or Case
	// IV (one O-chain along the source's producing path).
	if len(idx.finals) > 0 {
		var m *boolmat.Matrix
		var err error
		var target int
		memberRows := false
		if x.out < 0 {
			m, target = vl.start, int(x.inPort)
		} else {
			m, err = vl.suffixProduct(qc, idx, x.out, idx.path(x.out), 0, true)
			target, memberRows = int(x.outPort), true
		}
		if err == nil {
			vl.scatter(qc, idx, row, m, idx.finals, target, memberRows)
		}
		qc.rewind()
	}

	// Initial-input candidates never appear: Case I (d2.Out == nil).

	// Intermediate candidates, one decode per consuming-port group: Case III
	// when the source is an initial input, the main cases otherwise.
	for _, g := range idx.dstGroups {
		if !vl.nodeVisible(qc, idx, g.node) {
			continue
		}
		var m *boolmat.Matrix
		var err error
		var target int
		if x.out < 0 {
			m, err = vl.suffixProduct(qc, idx, g.node, idx.path(g.node), 0, false)
			target = int(x.inPort)
		} else {
			m, err = vl.decodeMainMatrix(qc, idx.path(x.out), idx.path(g.node),
				&pathPair{idx: idx, srcNode: x.out, dstNode: g.node})
			target = int(x.outPort)
		}
		if err == nil && m != nil {
			vl.scatter(qc, idx, row, m, g.members, target, false)
		}
		qc.rewind()
	}
	return row, nil
}
