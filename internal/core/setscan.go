package core

import (
	"fmt"

	"repro/internal/boolmat"
	"repro/internal/faults"
)

// This file implements the set-oriented scans behind the query planner
// (internal/query): depsRow and revDepsRow answer a whole Deps(x)/RevDeps(x)
// query as one bitset row over an ItemIndex, instead of one point decode per
// candidate item. The key observation is the one Algorithm 2 is built on: the
// decoding matrix depends only on the two labels' tree-node paths, never on
// the ports. Grouping candidates by interned path node (ItemIndex) therefore
// reduces a set query to one matrix chain per group plus a row or column
// extraction per member.
//
// Set semantics versus point semantics: a point query against an invisible or
// unknown *target* errors, and so do the scans (ErrHiddenItem /
// ErrUnknownItem). A point query against a malformed or invisible *candidate*
// also errors — in a set answer such candidates are simply excluded, which is
// the only coherent reading of "the set of items y for which DependsOn
// answers (true, nil)". The differential oracle test in fvl pins this down.

// suffixProduct returns the I- or O-matrix chain product over path[from:],
// served from the plan cache when the context has one attached for idx. Cache
// hits return a matrix that is NOT in the scratch arena (it survives rewind);
// misses compute into scratch and clone into the cache.
func (vl *ViewLabel) suffixProduct(qc *queryCtx, idx *ItemIndex, node int32, path []EdgeLabel, from int, outputs bool) (*boolmat.Matrix, error) {
	pc := qc.plan
	if pc != nil && idx != nil && pc.idx == idx && node >= 0 {
		key := prodKey{vl, node, int32(from), outputs}
		if m, ok := pc.prods[key]; ok {
			return m, nil
		}
		m, err := vl.plainProduct(qc, path, from, outputs)
		if err != nil {
			return nil, err
		}
		cl := m.Clone()
		if pc.prods == nil {
			pc.prods = map[prodKey]*boolmat.Matrix{}
		}
		pc.prods[key] = cl
		return cl, nil
	}
	return vl.plainProduct(qc, path, from, outputs)
}

func (vl *ViewLabel) plainProduct(qc *queryCtx, path []EdgeLabel, from int, outputs bool) (*boolmat.Matrix, error) {
	if outputs {
		return vl.outputsProduct(qc, path, from)
	}
	return vl.inputsProduct(qc, path, from)
}

// nodeVisible is pathVisible over an interned node, cached per plan. A node
// of -1 (absent port side) is vacuously visible, matching pathVisible(nil).
func (vl *ViewLabel) nodeVisible(qc *queryCtx, idx *ItemIndex, node int32) bool {
	if node < 0 {
		return true
	}
	pc := qc.plan
	if pc != nil && pc.idx == idx {
		key := visKey{vl, node}
		if v, ok := pc.visible[key]; ok {
			return v
		}
		v := vl.pathVisible(idx.path(node))
		if pc.visible == nil {
			pc.visible = map[visKey]bool{}
		}
		pc.visible[key] = v
		return v
	}
	return vl.pathVisible(idx.path(node))
}

// visibleRow returns the 1×(idx.Items()+1) bitset row of the item IDs visible
// in vl's view, cached per plan. Callers must treat the result as read-only.
func (vl *ViewLabel) visibleRow(qc *queryCtx, idx *ItemIndex) *boolmat.Matrix {
	pc := qc.plan
	if pc != nil && pc.idx == idx {
		if m, ok := pc.visRows[vl]; ok {
			return m
		}
	}
	row := boolmat.New(1, idx.n+1)
	for i, r := range idx.items {
		if !r.ok {
			continue
		}
		if vl.nodeVisible(qc, idx, r.out) && vl.nodeVisible(qc, idx, r.in) {
			row.Set(0, i+1, true)
		}
	}
	if pc != nil && pc.idx == idx {
		if pc.visRows == nil {
			pc.visRows = map[*ViewLabel]*boolmat.Matrix{}
		}
		pc.visRows[vl] = row
	}
	return row
}

// scatter transfers one group's decode-matrix bits into the answer row: for
// every visible member whose matrix bit at (port, target) — or (target, port)
// when memberRows is false — is set, the member's item bit is set. Out-of-
// range ports exclude exactly the members whose point queries would have
// errored on safeGet.
func (vl *ViewLabel) scatter(qc *queryCtx, idx *ItemIndex, row, m *boolmat.Matrix, members []member, target int, memberRows bool) {
	if target < 0 {
		return
	}
	if memberRows {
		if target >= m.Cols() {
			return
		}
		for _, mb := range members {
			p := int(mb.port)
			if p >= 0 && p < m.Rows() && vl.nodeVisible(qc, idx, mb.visNode) && m.Get(p, target) {
				row.Set(0, int(mb.item), true)
			}
		}
		return
	}
	if target >= m.Rows() {
		return
	}
	for _, mb := range members {
		p := int(mb.port)
		if p >= 0 && p < m.Cols() && vl.nodeVisible(qc, idx, mb.visNode) && m.Get(target, p) {
			row.Set(0, int(mb.item), true)
		}
	}
}

// scanTarget is the fixed endpoint of a set scan: the item's two port sides
// as paths plus, when the item lives in the scanned index, their interned
// nodes. External targets — labels owned by another shard's partition of the
// universe — carry node -1 on a side whose path was never interned here;
// visibility then falls back to pathVisible and the target-side chain
// products skip the plan cache (suffixProduct gates per side on node >= 0),
// so the answers stay byte-identical either way.
type scanTarget struct {
	itemID  int
	hasOut  bool
	hasIn   bool
	outNode int32 // interned node, or -1 when external or absent
	inNode  int32
	outPath []EdgeLabel
	inPath  []EdgeLabel
	outPort int32
	inPort  int32
}

// targetOfRef lifts an interned item reference into a scanTarget.
func targetOfRef(idx *ItemIndex, itemID int, x itemRef) scanTarget {
	t := scanTarget{itemID: itemID, outNode: x.out, inNode: x.in, outPort: x.outPort, inPort: x.inPort}
	if x.out >= 0 {
		t.hasOut = true
		t.outPath = idx.path(x.out)
	}
	if x.in >= 0 {
		t.hasIn = true
		t.inPath = idx.path(x.in)
	}
	return t
}

// targetOfLabel builds a scanTarget from a raw data label. Sides whose paths
// happen to be interned in idx get their nodes resolved (read-only lookup)
// so the plan cache still serves them; unknown paths stay external.
func targetOfLabel(idx *ItemIndex, itemID int, d *DataLabel) scanTarget {
	t := scanTarget{itemID: itemID, outNode: -1, inNode: -1}
	if d.Out != nil {
		t.hasOut = true
		t.outPath = d.Out.Path
		t.outPort = int32(d.Out.Port)
		if node, ok := idx.lookup(d.Out.Path); ok {
			t.outNode = node
		}
	}
	if d.In != nil {
		t.hasIn = true
		t.inPath = d.In.Path
		t.inPort = int32(d.In.Port)
		if node, ok := idx.lookup(d.In.Path); ok {
			t.inNode = node
		}
	}
	return t
}

// sideVisible is the visibility test for one target side: absent sides are
// vacuously visible, interned sides go through the plan-cached node test,
// external sides decode the path directly.
func (vl *ViewLabel) sideVisible(qc *queryCtx, idx *ItemIndex, has bool, node int32, path []EdgeLabel) bool {
	if !has {
		return true
	}
	if node >= 0 {
		return vl.nodeVisible(qc, idx, node)
	}
	return vl.pathVisible(path)
}

// depsRow answers Deps(itemID) = {y : DependsOn(y, itemID) = (true, nil)} as
// a bitset row: the target is d2 of every point query, candidates are d1.
func (vl *ViewLabel) depsRow(qc *queryCtx, idx *ItemIndex, itemID int) (*boolmat.Matrix, error) {
	x, ok := idx.ref(itemID)
	if !ok {
		return nil, fmt.Errorf("core: item %d has no label in the index: %w", itemID, faults.ErrUnknownItem)
	}
	return vl.depsRowTarget(qc, idx, targetOfRef(idx, itemID, x))
}

// depsRowForLabel is depsRow for a target that lives outside the index: the
// candidates scanned are idx's items, the fixed endpoint is the given label
// (itemID only names it in errors). The sharded scatter-gather path uses
// this to scan every partition's index against one globally-resolved label.
func (vl *ViewLabel) depsRowForLabel(qc *queryCtx, idx *ItemIndex, itemID int, d *DataLabel) (*boolmat.Matrix, error) {
	if d == nil || (d.Out == nil && d.In == nil) {
		return nil, fmt.Errorf("core: item %d has no label in the index: %w", itemID, faults.ErrUnknownItem)
	}
	return vl.depsRowTarget(qc, idx, targetOfLabel(idx, itemID, d))
}

func (vl *ViewLabel) depsRowTarget(qc *queryCtx, idx *ItemIndex, x scanTarget) (*boolmat.Matrix, error) {
	qc.begin()
	if !vl.sideVisible(qc, idx, x.hasOut, x.outNode, x.outPath) ||
		!vl.sideVisible(qc, idx, x.hasIn, x.inNode, x.inPath) {
		return nil, fmt.Errorf("core: item %d is not visible in view %q: %w", x.itemID, vl.view.Name, faults.ErrHiddenItem)
	}
	row := boolmat.New(1, idx.n+1)
	if !x.hasOut {
		// Case I: nothing flows into an initial input.
		return row, nil
	}

	// Initial-input candidates: Case II (target is a final output, λ*(S)
	// answers directly) or Case III (one I-chain along the target's consuming
	// path answers every initial at once).
	if len(idx.initials) > 0 {
		var m *boolmat.Matrix
		var err error
		var target int
		if !x.hasIn {
			m, target = vl.start, int(x.outPort)
		} else {
			m, err = vl.suffixProduct(qc, idx, x.inNode, x.inPath, 0, false)
			target = int(x.inPort)
		}
		if err == nil {
			vl.scatter(qc, idx, row, m, idx.initials, target, true)
		}
		qc.rewind()
	}

	// Final-output candidates never appear: Case I (d1.In == nil).

	// Intermediate candidates, one decode per producing-port group: Case IV
	// when the target is a final output, the main cases otherwise.
	for _, g := range idx.srcGroups {
		if !vl.nodeVisible(qc, idx, g.node) {
			continue
		}
		var m *boolmat.Matrix
		var err error
		var target int
		memberRows := true
		if !x.hasIn {
			m, err = vl.suffixProduct(qc, idx, g.node, idx.path(g.node), 0, true)
			target, memberRows = int(x.outPort), false
		} else {
			m, err = vl.decodeMainMatrix(qc, idx.path(g.node), x.inPath,
				&pathPair{idx: idx, srcNode: g.node, dstNode: x.inNode})
			target = int(x.inPort)
		}
		if err == nil && m != nil {
			vl.scatter(qc, idx, row, m, g.members, target, memberRows)
		}
		qc.rewind()
	}
	return row, nil
}

// revDepsRow answers RevDeps(itemID) = {y : DependsOn(itemID, y) = (true,
// nil)} as a bitset row: the target is d1 of every point query.
func (vl *ViewLabel) revDepsRow(qc *queryCtx, idx *ItemIndex, itemID int) (*boolmat.Matrix, error) {
	x, ok := idx.ref(itemID)
	if !ok {
		return nil, fmt.Errorf("core: item %d has no label in the index: %w", itemID, faults.ErrUnknownItem)
	}
	return vl.revDepsRowTarget(qc, idx, targetOfRef(idx, itemID, x))
}

// revDepsRowForLabel is revDepsRow for a target living outside the index;
// see depsRowForLabel.
func (vl *ViewLabel) revDepsRowForLabel(qc *queryCtx, idx *ItemIndex, itemID int, d *DataLabel) (*boolmat.Matrix, error) {
	if d == nil || (d.Out == nil && d.In == nil) {
		return nil, fmt.Errorf("core: item %d has no label in the index: %w", itemID, faults.ErrUnknownItem)
	}
	return vl.revDepsRowTarget(qc, idx, targetOfLabel(idx, itemID, d))
}

func (vl *ViewLabel) revDepsRowTarget(qc *queryCtx, idx *ItemIndex, x scanTarget) (*boolmat.Matrix, error) {
	qc.begin()
	if !vl.sideVisible(qc, idx, x.hasOut, x.outNode, x.outPath) ||
		!vl.sideVisible(qc, idx, x.hasIn, x.inNode, x.inPath) {
		return nil, fmt.Errorf("core: item %d is not visible in view %q: %w", x.itemID, vl.view.Name, faults.ErrHiddenItem)
	}
	row := boolmat.New(1, idx.n+1)
	if !x.hasIn {
		// Case I: a final output has no dependents.
		return row, nil
	}

	// Final-output candidates: Case II (source is an initial input) or Case
	// IV (one O-chain along the source's producing path).
	if len(idx.finals) > 0 {
		var m *boolmat.Matrix
		var err error
		var target int
		memberRows := false
		if !x.hasOut {
			m, target = vl.start, int(x.inPort)
		} else {
			m, err = vl.suffixProduct(qc, idx, x.outNode, x.outPath, 0, true)
			target, memberRows = int(x.outPort), true
		}
		if err == nil {
			vl.scatter(qc, idx, row, m, idx.finals, target, memberRows)
		}
		qc.rewind()
	}

	// Initial-input candidates never appear: Case I (d2.Out == nil).

	// Intermediate candidates, one decode per consuming-port group: Case III
	// when the source is an initial input, the main cases otherwise.
	for _, g := range idx.dstGroups {
		if !vl.nodeVisible(qc, idx, g.node) {
			continue
		}
		var m *boolmat.Matrix
		var err error
		var target int
		if !x.hasOut {
			m, err = vl.suffixProduct(qc, idx, g.node, idx.path(g.node), 0, false)
			target = int(x.inPort)
		} else {
			m, err = vl.decodeMainMatrix(qc, x.outPath, idx.path(g.node),
				&pathPair{idx: idx, srcNode: x.outNode, dstNode: g.node})
			target = int(x.outPort)
		}
		if err == nil && m != nil {
			vl.scatter(qc, idx, row, m, g.members, target, false)
		}
		qc.rewind()
	}
	return row, nil
}
