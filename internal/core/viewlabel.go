package core

import (
	"fmt"

	"repro/internal/boolmat"
	"repro/internal/faults"
	"repro/internal/prodgraph"
	"repro/internal/safety"
	"repro/internal/view"
	"repro/internal/workflow"
)

// Variant selects how much reachability information a view label
// materializes, trading view-labeling overhead against query time
// (Sections 4.3 and 4.4.3 of the paper, compared experimentally in
// Section 6.3).
type Variant int

const (
	// VariantSpaceEfficient stores only the full dependency assignment λ*′ of
	// the view; the reachability matrices I, O and Z are recomputed by graph
	// search over the view of the specification at query time.
	VariantSpaceEfficient Variant = iota
	// VariantDefault materializes all reachability matrices for I, O and Z;
	// recursion chains are resolved at query time by divide-and-conquer
	// matrix powers.
	VariantDefault
	// VariantQueryEfficient additionally materializes, for every recursion of
	// the view, the prefix products and the eventually-periodic powers of the
	// cycle matrix, so recursion chains are resolved in constant time.
	VariantQueryEfficient
)

// String names the variant as used in the experiment reports.
func (v Variant) String() string {
	switch v {
	case VariantSpaceEfficient:
		return "space-efficient"
	case VariantDefault:
		return "default"
	case VariantQueryEfficient:
		return "query-efficient"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// recChain caches, for one cycle of the production graph and one starting
// offset, the prefix products of the I (or O) matrices along the cycle and
// the eventually-periodic powers of the full-cycle product. With it, the
// product of any number of consecutive cycle matrices is available in
// constant time (Section 4.4.3).
type recChain struct {
	prefixes []*boolmat.Matrix // prefixes[r] = product of the first r matrices
	period   *boolmat.PowerPeriod
}

// product returns the product of the first n >= 0 matrices of the chain.
// The result is either a matrix cached in the chain or a scratch slot of
// the query context (for the one combination — full turns plus a non-zero
// remainder — that needs an actual multiplication).
func (rc *recChain) product(qc *queryCtx, n int) *boolmat.Matrix {
	l := len(rc.prefixes) - 1 // cycle length
	if n < l {
		return rc.prefixes[n]
	}
	q, r := n/l, n%l
	x := rc.period.Power(q)
	if r == 0 {
		return x
	}
	i := qc.take()
	qc.scratch[i] = boolmat.MulInto(qc.scratch[i], x, rc.prefixes[r])
	return qc.scratch[i]
}

// ViewLabel is φv(U): the static label of one safe view, consisting of the
// induced dependencies λ*(S) of the start module and the reachability
// functions I, O and Z of Section 4.3 (materialized or not, depending on the
// variant). A view label is combined with two data labels by DependsOn to
// answer reachability queries over the view.
//
// A view label is strictly read-only after construction: all per-query
// mutable state (the closure cache of the graph-search path and the scratch
// matrices of the decoder) lives in a queryCtx threaded through the decode
// path, so one label can serve any number of concurrent queries.
type ViewLabel struct {
	scheme  *Scheme
	view    *view.View
	variant Variant

	start    *boolmat.Matrix // λ*(S)
	included map[int]bool    // 1-based production indices of G_∆′

	// Materialized functions (VariantDefault and VariantQueryEfficient).
	iMat map[[2]int]*boolmat.Matrix
	oMat map[[2]int]*boolmat.Matrix
	zMat map[[3]int]*boolmat.Matrix

	// Full dependency assignment λ*′ (always kept; it is the entire payload of
	// VariantSpaceEfficient and the fallback for on-the-fly computation).
	full workflow.DependencyAssignment

	// Per-(cycle, offset) recursion caches (VariantQueryEfficient only).
	inRec  map[[2]int]*recChain
	outRec map[[2]int]*recChain

	// matrixFree enables the short-circuited decoding of Section 6.4
	// (Matrix-Free FVL), which avoids multiplying complete or empty matrices.
	matrixFree bool
}

// WithMatrixFree returns a copy of the view label whose decoding
// short-circuits products involving complete or empty reachability matrices
// (the Matrix-Free FVL of Section 6.4). The optimization is always correct;
// it pays off on coarse-grained views, where most matrices are complete.
//
// The copy is shallow: it shares the materialized matrices and recursion
// caches with the original, which is safe because a view label carries no
// mutable query state — the copy and the original can answer queries
// concurrently.
func (vl *ViewLabel) WithMatrixFree() *ViewLabel {
	c := *vl
	c.matrixFree = true
	return &c
}

// LabelView computes φv(U) for a safe view over the scheme's specification
// (Section 4.3). It fails when the view belongs to a different specification
// or is unsafe.
//
//fvlvet:viewlabel-ctor
func (s *Scheme) LabelView(v *view.View, variant Variant) (*ViewLabel, error) {
	if v.Spec != s.Spec {
		return nil, fmt.Errorf("core: view %q is defined over a different specification: %w", v.Name, faults.ErrForeignLabel)
	}
	if !v.IsSafe() {
		return nil, fmt.Errorf("core: view %q is unsafe: %w (%v)", v.Name, faults.ErrUnsafeView, v.SafetyError())
	}
	full, err := v.FullAssignment()
	if err != nil {
		return nil, err
	}
	start, err := v.StartDeps()
	if err != nil {
		return nil, err
	}
	vl := &ViewLabel{
		scheme:   s,
		view:     v,
		variant:  variant,
		start:    start.Clone(),
		included: map[int]bool{},
		full:     full,
	}
	for k := 1; k <= len(s.Spec.Grammar.Productions); k++ {
		if v.IncludesProduction(k) {
			vl.included[k] = true
		}
	}
	if variant == VariantSpaceEfficient {
		return vl, nil
	}

	closures, err := v.Closures()
	if err != nil {
		return nil, err
	}
	vl.iMat = map[[2]int]*boolmat.Matrix{}
	vl.oMat = map[[2]int]*boolmat.Matrix{}
	vl.zMat = map[[3]int]*boolmat.Matrix{}
	for k := range vl.included {
		cl, ok := closures[k]
		if !ok {
			// The production is included but not derivable in the view; its
			// matrices are never needed by visible data labels.
			continue
		}
		p := s.Spec.Grammar.Productions[k-1]
		n := len(p.RHS.Nodes)
		for i := 1; i <= n; i++ {
			vl.iMat[[2]int{k, i}] = cl.InputsTo(i - 1)
			vl.oMat[[2]int{k, i}] = cl.OutputsTo(i - 1)
		}
		for i := 1; i <= n; i++ {
			for j := i + 1; j <= n; j++ {
				vl.zMat[[3]int{k, i, j}] = cl.Between(i-1, j-1)
			}
		}
	}
	if variant == VariantQueryEfficient {
		if err := vl.buildRecursionCaches(); err != nil {
			return nil, err
		}
	}
	return vl, nil
}

// buildRecursionCaches materializes, for every cycle of the production graph
// that survives in the view and every starting offset, the prefix products
// and the periodic powers of the I and O matrices along the cycle.
//
//fvlvet:viewlabel-ctor
func (vl *ViewLabel) buildRecursionCaches() error {
	vl.inRec = map[[2]int]*recChain{}
	vl.outRec = map[[2]int]*recChain{}
	for _, c := range vl.scheme.Cycles {
		if !vl.cycleIncluded(c) {
			continue
		}
		for t := 1; t <= c.Len(); t++ {
			in, err := vl.buildChain(c, t, false)
			if err != nil {
				return err
			}
			out, err := vl.buildChain(c, t, true)
			if err != nil {
				return err
			}
			vl.inRec[[2]int{c.Index, t}] = in
			vl.outRec[[2]int{c.Index, t}] = out
		}
	}
	return nil
}

func (vl *ViewLabel) cycleIncluded(c prodgraph.Cycle) bool {
	for _, e := range c.Edges {
		if !vl.included[e.K] {
			return false
		}
	}
	return true
}

func (vl *ViewLabel) buildChain(c prodgraph.Cycle, t int, outputs bool) (*recChain, error) {
	l := c.Len()
	mod, err := vl.scheme.moduleAtCycleOffset(c.Index, t)
	if err != nil {
		return nil, err
	}
	dim := mod.In
	if outputs {
		dim = mod.Out
	}
	// Construction runs with its own throwaway context; the query-efficient
	// variant has its matrices materialized, so the context stays empty.
	qc := new(queryCtx)
	prefixes := make([]*boolmat.Matrix, l+1)
	prefixes[0] = boolmat.Identity(dim)
	for r := 1; r <= l; r++ {
		e := c.EdgeAt(t + r - 1)
		m, err := vl.edgeIO(qc, e.K, e.I, outputs)
		if err != nil {
			return nil, err
		}
		prefixes[r] = prefixes[r-1].Mul(m)
	}
	return &recChain{prefixes: prefixes, period: boolmat.FindPeriod(prefixes[l])}, nil
}

// View returns the view the label was computed for.
func (vl *ViewLabel) View() *view.View { return vl.view }

// Variant returns the label's variant.
func (vl *ViewLabel) Variant() Variant { return vl.variant }

// StartDeps returns λ*(S), the induced dependency matrix of the start module
// under the view.
func (vl *ViewLabel) StartDeps() *boolmat.Matrix { return vl.start.Clone() }

// checkNode validates a 1-based node index of production k against the
// production's right-hand side. Data labels are untrusted input to the
// decoder, so indices must be checked before they reach a closure or the
// grammar's node list (a map lookup in the materialized matrices catches
// them for free, but the graph-search path would index out of range).
// checkNode must only be called with an included (hence valid) k.
func (vl *ViewLabel) checkNode(k, i int) error {
	if n := len(vl.scheme.Spec.Grammar.Productions[k-1].RHS.Nodes); i < 1 || i > n {
		return fmt.Errorf("core: node index %d out of range for production %d (%d nodes) in view %q", i, k, n, vl.view.Name)
	}
	return nil
}

// edgeI returns I(k, i): the reachability matrix from the inputs of the
// left-hand side of production k to the inputs of its i-th right-hand-side
// node, under the view's full dependency assignment.
func (vl *ViewLabel) edgeI(qc *queryCtx, k, i int) (*boolmat.Matrix, error) {
	if !vl.included[k] {
		return nil, fmt.Errorf("core: production %d is not part of view %q", k, vl.view.Name)
	}
	if err := vl.checkNode(k, i); err != nil {
		return nil, err
	}
	if vl.iMat != nil {
		if m, ok := vl.iMat[[2]int{k, i}]; ok {
			return m, nil
		}
		return nil, fmt.Errorf("core: I(%d,%d) is undefined in view %q", k, i, vl.view.Name)
	}
	cl, err := vl.closureFor(qc, k)
	if err != nil {
		return nil, err
	}
	return cl.InputsTo(i - 1), nil
}

// edgeO returns O(k, i): the reversed reachability matrix from the outputs of
// the left-hand side of production k to the outputs of its i-th node.
func (vl *ViewLabel) edgeO(qc *queryCtx, k, i int) (*boolmat.Matrix, error) {
	if !vl.included[k] {
		return nil, fmt.Errorf("core: production %d is not part of view %q", k, vl.view.Name)
	}
	if err := vl.checkNode(k, i); err != nil {
		return nil, err
	}
	if vl.oMat != nil {
		if m, ok := vl.oMat[[2]int{k, i}]; ok {
			return m, nil
		}
		return nil, fmt.Errorf("core: O(%d,%d) is undefined in view %q", k, i, vl.view.Name)
	}
	cl, err := vl.closureFor(qc, k)
	if err != nil {
		return nil, err
	}
	return cl.OutputsTo(i - 1), nil
}

// edgeIO dispatches to edgeO or edgeI.
func (vl *ViewLabel) edgeIO(qc *queryCtx, k, i int, outputs bool) (*boolmat.Matrix, error) {
	if outputs {
		return vl.edgeO(qc, k, i)
	}
	return vl.edgeI(qc, k, i)
}

// edgeZ returns Z(k, i, j): the reachability matrix from the outputs of the
// i-th node of production k to the inputs of its j-th node. For i >= j the
// matrix is empty.
func (vl *ViewLabel) edgeZ(qc *queryCtx, k, i, j int) (*boolmat.Matrix, error) {
	if !vl.included[k] {
		return nil, fmt.Errorf("core: production %d is not part of view %q", k, vl.view.Name)
	}
	if err := vl.checkNode(k, i); err != nil {
		return nil, err
	}
	if err := vl.checkNode(k, j); err != nil {
		return nil, err
	}
	p := vl.scheme.Spec.Grammar.Productions[k-1]
	mi := vl.scheme.Spec.Grammar.Modules[p.RHS.Nodes[i-1]]
	mj := vl.scheme.Spec.Grammar.Modules[p.RHS.Nodes[j-1]]
	if i >= j {
		return qc.zero(mi.Out, mj.In), nil
	}
	if vl.zMat != nil {
		if m, ok := vl.zMat[[3]int{k, i, j}]; ok {
			return m, nil
		}
		return nil, fmt.Errorf("core: Z(%d,%d,%d) is undefined in view %q", k, i, j, vl.view.Name)
	}
	cl, err := vl.closureFor(qc, k)
	if err != nil {
		return nil, err
	}
	return cl.Between(i-1, j-1), nil
}

// closureFor computes (and caches for the duration of one query — or, with a
// plan cache attached, for the lifetime of the plan) the port closure of a
// production's right-hand side under λ*′. This is the graph-search path of
// VariantSpaceEfficient; the materialized variants never reach it, so their
// queries write nothing at all.
func (vl *ViewLabel) closureFor(qc *queryCtx, k int) (*safety.Closure, error) {
	if qc.plan != nil {
		if cl, ok := qc.plan.closureFor(vl, k); ok {
			return cl, nil
		}
	} else if cl, ok := qc.closures[k]; ok {
		return cl, nil
	}
	p := vl.scheme.Spec.Grammar.Productions[k-1]
	cl, err := safety.NewClosure(vl.scheme.Spec.Grammar, p.RHS, vl.full)
	if err != nil {
		return nil, err
	}
	if qc.plan != nil {
		qc.plan.putClosure(vl, k, cl)
		return cl, nil
	}
	if qc.closures == nil {
		qc.closures = map[int]*safety.Closure{}
	}
	qc.closures[k] = cl
	return cl, nil
}

// edgeMatrix implements procedures Inputs and Outputs of Algorithm 1: given
// an edge label of the compressed parse tree, it returns the reachability
// matrix from the inputs (outputs=false) or the reversed reachability matrix
// from the outputs (outputs=true) of the edge's parent module (for recursive
// edges, the first unfolded module of the recursion) to the same-kind ports
// of the edge's child module.
func (vl *ViewLabel) edgeMatrix(qc *queryCtx, e EdgeLabel, outputs bool) (*boolmat.Matrix, error) {
	if !e.Recursive {
		return vl.edgeIO(qc, e.K, e.I, outputs)
	}
	cache := vl.inRec
	if outputs {
		cache = vl.outRec
	}
	return vl.recursionChain(qc, e, cache, outputs)
}

// recursionChain resolves a recursive edge label (s, t, i): the product of
// the i-1 cycle matrices starting at offset t of cycle s.
func (vl *ViewLabel) recursionChain(qc *queryCtx, e EdgeLabel, cache map[[2]int]*recChain, outputs bool) (*boolmat.Matrix, error) {
	c, err := vl.scheme.Cycle(e.S)
	if err != nil {
		return nil, err
	}
	n := e.I - 1 // number of matrices in the chain
	if n < 0 {
		return nil, fmt.Errorf("core: recursive edge %v has child position < 1", e)
	}

	// Constant-time path: the cached prefix products and periodic powers.
	// Offsets wrap around the cycle (EdgeAt's convention), but the caches
	// are keyed by offsets in [1, Len] only — normalize before looking up,
	// or the internally synthesized edges of decodeMain's recursive cases
	// (offset el.T+i, possibly past one full turn) would silently fall to
	// the slow product/power path below.
	if cache != nil {
		t := (e.T-1)%c.Len() + 1
		if rc, ok := cache[[2]int{e.S, t}]; ok {
			return rc.product(qc, n), nil
		}
	}

	mod, err := vl.scheme.moduleAtCycleOffset(e.S, e.T)
	if err != nil {
		return nil, err
	}
	dim := mod.In
	if outputs {
		dim = mod.Out
	}
	if n == 0 {
		return qc.identity(dim), nil
	}

	l := c.Len()
	// Base matrices of one full turn around the cycle, starting at offset t.
	block := make([]*boolmat.Matrix, 0, l)
	for a := 0; a < l && a < n; a++ {
		edge := c.EdgeAt(e.T + a)
		m, err := vl.edgeIO(qc, edge.K, edge.I, outputs)
		if err != nil {
			return nil, err
		}
		block = append(block, m)
	}
	if n <= l {
		return boolmat.Product(block...), nil
	}
	// n > l: X^q times the first r block matrices, where X is the product of
	// one full turn (divide-and-conquer power, O(log n) multiplications).
	x := boolmat.Product(block...)
	q, r := n/l, n%l
	result := x.Pow(q)
	var spare *boolmat.Matrix
	for a := 0; a < r; a++ {
		// result is owned (Pow returns a fresh matrix), so the remainder of
		// the chain can ping-pong between it and one scratch buffer.
		spare = boolmat.MulInto(spare, result, block[a])
		result, spare = spare, result
	}
	return result, nil
}

// Visible reports whether a data item with the given label is visible in the
// view of a run: every production referenced by the label's paths (directly
// by a (k, i) edge or through the unfolding of a recursion) must belong to
// the restricted grammar G_∆′ (Section 5, data-visibility check).
func (vl *ViewLabel) Visible(d *DataLabel) bool {
	return vl.pathVisible(pathOf(d.Out)) && vl.pathVisible(pathOf(d.In))
}

func pathOf(p *PortLabel) []EdgeLabel {
	if p == nil {
		return nil
	}
	return p.Path
}

func (vl *ViewLabel) pathVisible(path []EdgeLabel) bool {
	for _, e := range path {
		if !e.Recursive {
			if !vl.included[e.K] {
				return false
			}
			continue
		}
		c, err := vl.scheme.Cycle(e.S)
		if err != nil {
			return false
		}
		// Data labels are untrusted input: a recursive edge with an offset
		// outside the cycle or a child position < 1 is malformed (the run
		// labeler never emits one) and would panic the wraparound helpers
		// downstream. Visible is the choke point every query passes through
		// for both labels, so rejecting here keeps the whole decode path
		// panic-free.
		if e.T < 1 || e.T > c.Len() || e.I < 1 {
			return false
		}
		// Children 2..I of the recursive node were created by the cycle
		// productions at offsets T .. T+I-2.
		for a := 0; a < e.I-1 && a < c.Len(); a++ {
			if !vl.included[c.EdgeAt(e.T+a).K] {
				return false
			}
		}
		if e.I-1 > c.Len() {
			// More than one full turn around the cycle: every cycle production
			// is involved.
			for _, ce := range c.Edges {
				if !vl.included[ce.K] {
					return false
				}
			}
		}
	}
	return true
}

// SizeBits returns the size of the view label in bits under the chosen
// variant, the measure reported by the Figure 19 experiment: one bit per
// materialized matrix entry (λ*′ for the space-efficient variant; λ*(S), I,
// O and Z for the default variant; plus the recursion caches for the
// query-efficient variant).
func (vl *ViewLabel) SizeBits() int {
	total := 0
	switch vl.variant {
	case VariantSpaceEfficient:
		for _, m := range vl.full {
			total += m.Rows() * m.Cols()
		}
	case VariantDefault, VariantQueryEfficient:
		total += vl.start.Rows() * vl.start.Cols()
		for _, m := range vl.iMat {
			total += m.Rows() * m.Cols()
		}
		for _, m := range vl.oMat {
			total += m.Rows() * m.Cols()
		}
		for _, m := range vl.zMat {
			total += m.Rows() * m.Cols()
		}
		if vl.variant == VariantQueryEfficient {
			for _, rc := range vl.inRec {
				for _, m := range rc.prefixes {
					total += m.Rows() * m.Cols()
				}
				total += rc.period.SizeBits()
			}
			for _, rc := range vl.outRec {
				for _, m := range rc.prefixes {
					total += m.Rows() * m.Cols()
				}
				total += rc.period.SizeBits()
			}
		}
	}
	return total
}
