package core

import (
	"sync"

	"repro/internal/boolmat"
	"repro/internal/safety"
)

// queryCtx carries every piece of mutable state one DependsOn query needs:
// the per-query closure cache of the graph-search path and a bump-allocated
// pool of scratch matrices for the product chains and transpose temporaries
// of Algorithm 2. Threading it explicitly through the decode path keeps
// ViewLabel strictly read-only after construction, so any number of
// goroutines can query one label (or shallow copies of it, see
// WithMatrixFree) concurrently, each with its own context.
//
// Contexts are reusable: begin resets the bump allocator and drops the
// closures of the previous query while keeping the matrix storage, so a
// warmed-up context answers queries without allocating. Dropping the
// closures — never the matrices, whose contents are always overwritten — is
// what preserves the query-state-honesty invariant: the closure cache is
// born empty on every query, so the space-efficient variant pays its full
// graph-search cost per query exactly as charged in the paper's Figure 20
// experiment.
//
// The invariant can be relaxed deliberately: a context with a PlanCache
// attached (QuerySession.EnsurePlan) routes closureFor through the plan's
// epoch-keyed cache instead, which survives begin — that is the amortization
// the batch engine and the set-query plans opt into.
type queryCtx struct {
	// closures caches on-the-fly port closures within one query so a single
	// query does not recompute the same production twice. It is only ever
	// populated on the graph-search path (closureFor), i.e. when the
	// materialized matrices are absent — in practice VariantSpaceEfficient.
	closures map[int]*safety.Closure

	// plan, when non-nil, is the plan-scoped cache closures (and the
	// set-query scans' chain products and visibility bits) are served from
	// instead of the per-query memo above. begin never touches it.
	plan *PlanCache

	// scratch is a bump-allocated arena of matrices: every take returns a
	// distinct slot, so no two live intermediate results of one query share
	// storage, and a recycled context reuses the previous query's storage
	// via the reshaping In kernels of boolmat.
	scratch []*boolmat.Matrix
	used    int
}

// begin readies the context for a new query: the scratch arena rewinds and
// the closure cache of the previous query is dropped (entries, not storage).
func (qc *queryCtx) begin() {
	qc.used = 0
	clear(qc.closures)
}

// rewind resets only the bump allocator. The set-query scans use it between
// per-group decodes: everything a group's result depends on across rewinds
// lives in the plan cache (cloned) or in the label itself, never in scratch.
func (qc *queryCtx) rewind() {
	qc.used = 0
}

// take returns the index of a fresh scratch slot.
func (qc *queryCtx) take() int {
	if qc.used == len(qc.scratch) {
		qc.scratch = append(qc.scratch, nil)
	}
	i := qc.used
	qc.used++
	return i
}

// identity returns an n x n identity matrix backed by a scratch slot.
func (qc *queryCtx) identity(n int) *boolmat.Matrix {
	i := qc.take()
	qc.scratch[i] = boolmat.IdentityInto(qc.scratch[i], n)
	return qc.scratch[i]
}

// zero returns an all-false r x c matrix backed by a scratch slot.
func (qc *queryCtx) zero(r, c int) *boolmat.Matrix {
	i := qc.take()
	qc.scratch[i] = boolmat.Zero(qc.scratch[i], r, c)
	return qc.scratch[i]
}

// transpose returns the transpose of m backed by a scratch slot.
func (qc *queryCtx) transpose(m *boolmat.Matrix) *boolmat.Matrix {
	i := qc.take()
	qc.scratch[i] = boolmat.TransposeInto(qc.scratch[i], m)
	return qc.scratch[i]
}

// queryCtxPool recycles contexts across queries and goroutines. DependsOn
// draws from it per call; QuerySession pins one context for a worker that
// issues many queries back to back.
var queryCtxPool = sync.Pool{New: func() any { return new(queryCtx) }}

// QuerySession is a reusable per-goroutine query context. A session must not
// be shared between goroutines; the labels it queries can be. Workers that
// answer many queries in a row (see internal/engine) hold one session each
// so the scratch storage of a query is recycled by the next without a trip
// through the pool.
type QuerySession struct {
	qc *queryCtx
}

// NewQuerySession draws a context from the shared pool.
func NewQuerySession() *QuerySession {
	return &QuerySession{qc: queryCtxPool.Get().(*queryCtx)}
}

// DependsOn answers one reachability query against vl using the session's
// context. It is equivalent to vl.DependsOn(d1, d2).
func (s *QuerySession) DependsOn(vl *ViewLabel, d1, d2 *DataLabel) (bool, error) {
	return vl.dependsOn(s.qc, d1, d2)
}

// EnsurePlan attaches a plan-scoped cache to the session and returns it:
// closures (and, with a non-nil index, the set-query scans' chain products
// and visibility bits) are then amortized across every query the session
// answers, instead of being recomputed per query. Passing nil keeps whatever
// plan is already attached (or attaches an index-free one, which amortizes
// closures only); passing an index replaces a plan keyed to a different
// index, because node IDs and item rows are only meaningful against the
// index that minted them.
//
// The attached plan lives until Close or the next index switch; a session
// drawn fresh from the pool always starts without one, so plain DependsOn
// calls keep the query-state-honesty invariant unless a caller opts in.
func (s *QuerySession) EnsurePlan(idx *ItemIndex) *PlanCache {
	pc := s.qc.plan
	if pc == nil || (idx != nil && pc.idx != idx) {
		pc = newPlanCache(idx)
		s.qc.plan = pc
	}
	return pc
}

// AttachPlan attaches a specific plan-scoped cache — typically one drawn
// from a PlanShare — to the session, replacing whatever plan was attached.
// The session owns the cache until DetachPlan or Close; attaching a cache
// that another live session still uses is a data race, which is why caches
// move through a PlanShare rather than being handed around directly.
// Attaching nil restores the bare, honestly-accounted state.
func (s *QuerySession) AttachPlan(pc *PlanCache) { s.qc.plan = pc }

// DetachPlan removes and returns the session's plan cache (nil if none),
// leaving the session bare. The usual pairing is Acquire/AttachPlan before
// a batch and Release(DetachPlan()) after it, so the cache — including
// anything EnsurePlan minted mid-batch to replace it — survives into the
// next session at the same epoch.
func (s *QuerySession) DetachPlan() *PlanCache {
	pc := s.qc.plan
	s.qc.plan = nil
	return pc
}

// DepsRow answers the set query Deps(itemID) against vl as a bitset row:
// bit y of the returned 1×(idx.Items()+1) row is set exactly when
// DependsOn(label(y), label(itemID)) answers (true, nil) — everything the
// item transitively depends on, in one row. See ViewLabel.depsRow.
func (s *QuerySession) DepsRow(vl *ViewLabel, idx *ItemIndex, itemID int) (*boolmat.Matrix, error) {
	return vl.depsRow(s.qc, idx, itemID)
}

// RevDepsRow answers the set query RevDeps(itemID) against vl as a bitset
// row: bit y is set exactly when DependsOn(label(itemID), label(y)) answers
// (true, nil) — everything that transitively depends on the item.
func (s *QuerySession) RevDepsRow(vl *ViewLabel, idx *ItemIndex, itemID int) (*boolmat.Matrix, error) {
	return vl.revDepsRow(s.qc, idx, itemID)
}

// DepsRowForLabel is DepsRow for a target item whose label lives outside the
// index — the sharded scatter-gather path, where each partition's index
// scans its own items against one globally-resolved target label. itemID
// names the item in errors; semantics are otherwise identical to DepsRow.
func (s *QuerySession) DepsRowForLabel(vl *ViewLabel, idx *ItemIndex, itemID int, d *DataLabel) (*boolmat.Matrix, error) {
	return vl.depsRowForLabel(s.qc, idx, itemID, d)
}

// RevDepsRowForLabel is RevDepsRow for an external target label; see
// DepsRowForLabel.
func (s *QuerySession) RevDepsRowForLabel(vl *ViewLabel, idx *ItemIndex, itemID int, d *DataLabel) (*boolmat.Matrix, error) {
	return vl.revDepsRowForLabel(s.qc, idx, itemID, d)
}

// VisibleRow returns the bitset row of item IDs visible in vl's view, cached
// in the session's plan. The returned matrix is shared and must be treated
// as read-only.
func (s *QuerySession) VisibleRow(vl *ViewLabel, idx *ItemIndex) *boolmat.Matrix {
	return vl.visibleRow(s.qc, idx)
}

// Close returns the session's context to the pool. The session must not be
// used afterwards. The plan cache (if any) is dropped so pooled contexts
// never leak amortized state into the next session.
func (s *QuerySession) Close() {
	if s.qc != nil {
		s.qc.plan = nil
		queryCtxPool.Put(s.qc)
		s.qc = nil
	}
}
