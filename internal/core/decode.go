package core

import (
	"fmt"

	"repro/internal/boolmat"
	"repro/internal/faults"
	"repro/internal/workflow"
)

// moduleAt returns the module denoted by the compressed-parse-tree node at
// the end of the given edge-label path, starting from the start module.
func (s *Scheme) moduleAt(path []EdgeLabel) (workflow.Module, error) {
	g := s.Spec.Grammar
	cur := g.Modules[g.Start]
	for _, e := range path {
		if e.Recursive {
			m, err := s.moduleAtCycleOffset(e.S, e.T+e.I-1)
			if err != nil {
				return workflow.Module{}, err
			}
			cur = m
			continue
		}
		if e.K < 1 || e.K > len(g.Productions) {
			return workflow.Module{}, fmt.Errorf("core: edge label %v references unknown production", e)
		}
		p := g.Productions[e.K-1]
		if e.I < 1 || e.I > len(p.RHS.Nodes) {
			return workflow.Module{}, fmt.Errorf("core: edge label %v references unknown node of production %d", e, e.K)
		}
		cur = g.Modules[p.RHS.Nodes[e.I-1]]
	}
	return cur, nil
}

// mulInto multiplies two reachability matrices into dst (which must not
// alias a or b; nil allocates). When the label is in matrix-free mode
// (Section 6.4), products of complete or empty matrices are short-circuited,
// which preserves correctness and avoids most of the matrix arithmetic on
// coarse-grained views.
func (vl *ViewLabel) mulInto(dst, a, b *boolmat.Matrix) *boolmat.Matrix {
	if vl.matrixFree {
		if a.IsEmpty() || b.IsEmpty() {
			return boolmat.Zero(dst, a.Rows(), b.Cols())
		}
		if a.Cols() > 0 && a.IsFull() && b.IsFull() {
			return boolmat.Ones(dst, a.Rows(), b.Cols())
		}
	}
	return boolmat.MulInto(dst, a, b)
}

// mulScratch multiplies a x b into a fresh scratch slot of the query
// context. Distinct calls use distinct slots, so earlier intermediate
// results of the same query are never clobbered.
func (vl *ViewLabel) mulScratch(qc *queryCtx, a, b *boolmat.Matrix) *boolmat.Matrix {
	i := qc.take()
	qc.scratch[i] = vl.mulInto(qc.scratch[i], a, b)
	return qc.scratch[i]
}

// chainProduct folds a sequence of edge matrices left to right, ping-ponging
// between two scratch slots of the query context so a chain of any length
// uses at most two matrices of storage. The first factor may be a matrix
// cached in the label and is never written to; the returned matrix is either
// that first factor (single-element chains) or one of the two slots.
func (vl *ViewLabel) chainProduct(qc *queryCtx, path []EdgeLabel, from int, outputs bool) (*boolmat.Matrix, error) {
	result, err := vl.edgeMatrix(qc, path[from], outputs)
	if err != nil {
		return nil, err
	}
	if from+1 >= len(path) {
		return result, nil
	}
	bufs := [2]int{qc.take(), qc.take()}
	cur := 0
	for _, e := range path[from+1:] {
		m, err := vl.edgeMatrix(qc, e, outputs)
		if err != nil {
			return nil, err
		}
		qc.scratch[bufs[cur]] = vl.mulInto(qc.scratch[bufs[cur]], result, m)
		result = qc.scratch[bufs[cur]]
		cur ^= 1
	}
	return result, nil
}

// inputsProduct returns the product of the I matrices over path[from:]: the
// reachability matrix from the inputs of the module at path[:from] to the
// inputs of the module at the end of the path. An empty segment yields the
// identity.
func (vl *ViewLabel) inputsProduct(qc *queryCtx, path []EdgeLabel, from int) (*boolmat.Matrix, error) {
	if from >= len(path) {
		mod, err := vl.scheme.moduleAt(path)
		if err != nil {
			return nil, err
		}
		return qc.identity(mod.In), nil
	}
	return vl.chainProduct(qc, path, from, false)
}

// outputsProduct returns the product of the O matrices over path[from:]: the
// reversed reachability matrix from the outputs of the module at path[:from]
// to the outputs of the module at the end of the path.
func (vl *ViewLabel) outputsProduct(qc *queryCtx, path []EdgeLabel, from int) (*boolmat.Matrix, error) {
	if from >= len(path) {
		mod, err := vl.scheme.moduleAt(path)
		if err != nil {
			return nil, err
		}
		return qc.identity(mod.Out), nil
	}
	return vl.chainProduct(qc, path, from, true)
}

// DependsOn is the decoding predicate π of the view-adaptive labeling scheme
// (Algorithm 2): using only the two data labels and this view label, it
// reports whether the data item labeled d2 depends on the data item labeled
// d1 with respect to the view. It returns an error when either data item is
// not visible in the view, or when the labels are structurally inconsistent
// with the scheme's specification.
//
// The label is not written during decoding, so DependsOn is safe to call
// from any number of goroutines concurrently; each call borrows a query
// context from a shared pool. Workers issuing many queries back to back can
// pin a context with NewQuerySession instead.
func (vl *ViewLabel) DependsOn(d1, d2 *DataLabel) (bool, error) {
	qc := queryCtxPool.Get().(*queryCtx)
	defer queryCtxPool.Put(qc)
	return vl.dependsOn(qc, d1, d2)
}

// dependsOn answers one query using the given context.
func (vl *ViewLabel) dependsOn(qc *queryCtx, d1, d2 *DataLabel) (bool, error) {
	qc.begin()
	if d1 == nil || d2 == nil {
		return false, fmt.Errorf("core: nil data label")
	}
	if !vl.Visible(d1) {
		return false, fmt.Errorf("core: the first data item is not visible in view %q: %w", vl.view.Name, faults.ErrHiddenItem)
	}
	if !vl.Visible(d2) {
		return false, fmt.Errorf("core: the second data item is not visible in view %q: %w", vl.view.Name, faults.ErrHiddenItem)
	}

	// Case I: a final output has no dependents; nothing depends on less than
	// an initial input.
	if d1.In == nil || d2.Out == nil {
		return false, nil
	}

	// Case II: initial input to final output — both are ports of the start
	// module, so λ*(S) answers directly.
	if d1.Out == nil && d2.In == nil {
		return vl.safeGet(vl.start, d1.In.Port, d2.Out.Port)
	}

	// Case III: initial input to intermediate item — chain the I matrices
	// along the consuming port's path.
	if d1.Out == nil {
		prod, err := vl.inputsProduct(qc, d2.In.Path, 0)
		if err != nil {
			return false, err
		}
		return vl.safeGet(prod, d1.In.Port, d2.In.Port)
	}

	// Case IV: intermediate item to final output — chain the O matrices along
	// the producing port's path.
	if d2.In == nil {
		prod, err := vl.outputsProduct(qc, d1.Out.Path, 0)
		if err != nil {
			return false, err
		}
		return vl.safeGet(prod, d2.Out.Port, d1.Out.Port)
	}

	// Main cases: both items are intermediate.
	return vl.decodeMain(qc, d1.Out, d2.In)
}

func (vl *ViewLabel) safeGet(m *boolmat.Matrix, x, y int) (bool, error) {
	if x < 0 || x >= m.Rows() || y < 0 || y >= m.Cols() {
		return false, fmt.Errorf("core: port index (%d,%d) out of range for %dx%d reachability matrix", x, y, m.Rows(), m.Cols())
	}
	return m.Get(x, y), nil
}

// decodeMain handles cases 1, 2a and 2b of Algorithm 2: o1 is the producing
// port of d1, i2 is the consuming port of d2, both intermediate.
func (vl *ViewLabel) decodeMain(qc *queryCtx, o1, i2 *PortLabel) (bool, error) {
	res, err := vl.decodeMainMatrix(qc, o1.Path, i2.Path, nil)
	if err != nil {
		return false, err
	}
	if res == nil {
		return false, nil
	}
	return vl.safeGet(res, o1.Port, i2.Port)
}

// pathPair identifies the two interned tree nodes a set scan is decoding
// between, letting decodeMainMatrix serve the path-suffix chain products from
// the plan cache instead of recomputing them per group. A nil pathPair (the
// point-query path) computes products directly in scratch.
type pathPair struct {
	idx     *ItemIndex
	srcNode int32 // interned node of l1
	dstNode int32 // interned node of l2
}

// decodeMainMatrix is the matrix-valued core of cases 1, 2a and 2b: given the
// producing side's path l1 and the consuming side's path l2 (both of
// intermediate items), it returns the full decoding matrix — rows indexed by
// out-ports of the node at l1, columns by in-ports of the node at l2. A
// (nil, nil) return means the case is definitely false for every port pair
// (coinciding/ancestor nodes, or flow against production order).
//
// The point decoder reads a single entry of the result; the set scans read a
// whole row or column, which is what makes one matrix chain answer a whole
// group of items at once.
func (vl *ViewLabel) decodeMainMatrix(qc *queryCtx, l1, l2 []EdgeLabel, pp *pathPair) (*boolmat.Matrix, error) {
	outProd := func(from int) (*boolmat.Matrix, error) {
		if pp != nil {
			return vl.suffixProduct(qc, pp.idx, pp.srcNode, l1, from, true)
		}
		return vl.outputsProduct(qc, l1, from)
	}
	inProd := func(from int) (*boolmat.Matrix, error) {
		if pp != nil {
			return vl.suffixProduct(qc, pp.idx, pp.dstNode, l2, from, false)
		}
		return vl.inputsProduct(qc, l2, from)
	}

	shared := commonPrefixLen(l1, l2)

	// Case 1: the two tree nodes coincide or one is an ancestor of the other;
	// the consuming port cannot be reached from the producing port.
	if shared == len(l1) || shared == len(l2) {
		return nil, nil
	}

	el, er := l1[shared], l2[shared]
	if el.Recursive != er.Recursive {
		return nil, fmt.Errorf("core: inconsistent data labels: paths diverge at %v vs %v", el, er)
	}

	if !el.Recursive {
		// Case 2a: the least common ancestor is an ordinary node; both edges
		// come from the same production.
		if el.K != er.K {
			return nil, fmt.Errorf("core: inconsistent data labels: sibling edges %v and %v use different productions", el, er)
		}
		i, j := el.I, er.I
		if i > j {
			return nil, nil
		}
		z, err := vl.edgeZ(qc, el.K, i, j)
		if err != nil {
			return nil, err
		}
		o, err := outProd(shared + 1)
		if err != nil {
			return nil, err
		}
		in, err := inProd(shared + 1)
		if err != nil {
			return nil, err
		}
		ot := qc.transpose(o)
		t1 := vl.mulScratch(qc, ot, z)
		return vl.mulScratch(qc, t1, in), nil
	}

	// Case 2b: the least common ancestor is a recursive node.
	if el.S != er.S || el.T != er.T {
		return nil, fmt.Errorf("core: inconsistent data labels: sibling recursive edges %v and %v disagree on the cycle", el, er)
	}
	c, err := vl.scheme.Cycle(el.S)
	if err != nil {
		return nil, err
	}
	i, j := el.I, er.I
	switch {
	case i < j:
		// The producing port lives in an earlier unfolding of the recursion
		// than the consuming port.
		if shared+1 == len(l1) {
			// o1 is a port of the i-th unfolded composite module itself; the
			// j-th module is derived from it, so nothing flows forward.
			return nil, nil
		}
		next := l1[shared+1]
		if next.Recursive {
			return nil, fmt.Errorf("core: inconsistent data labels: expected a production edge after %v, got %v", el, next)
		}
		ce := c.EdgeAt(el.T + i - 1) // the cycle edge leaving the i-th module
		if next.K != ce.K {
			return nil, fmt.Errorf("core: inconsistent data labels: edge %v does not use the cycle production %d", next, ce.K)
		}
		iPrime, jPrime := next.I, ce.I
		if iPrime > jPrime {
			return nil, nil
		}
		o, err := outProd(shared + 2)
		if err != nil {
			return nil, err
		}
		z, err := vl.edgeZ(qc, ce.K, iPrime, jPrime)
		if err != nil {
			return nil, err
		}
		iChain, err := vl.edgeMatrix(qc, RecursiveEdge(el.S, el.T+i, j-i), false)
		if err != nil {
			return nil, err
		}
		in, err := inProd(shared + 1)
		if err != nil {
			return nil, err
		}
		ot := qc.transpose(o)
		t1 := vl.mulScratch(qc, ot, z)
		t2 := vl.mulScratch(qc, t1, iChain)
		return vl.mulScratch(qc, t2, in), nil

	case i > j:
		// The producing port lives in a later (more deeply nested) unfolding
		// than the consuming port; flow goes out through the recursion and
		// then forward inside the j-th unfolding's production.
		if shared+1 == len(l2) {
			// i2 is a port of the j-th unfolded composite module itself; a
			// descendant's output cannot reach its ancestor's input.
			return nil, nil
		}
		next := l2[shared+1]
		if next.Recursive {
			return nil, fmt.Errorf("core: inconsistent data labels: expected a production edge after %v, got %v", er, next)
		}
		ce := c.EdgeAt(el.T + j - 1) // the cycle edge leaving the j-th module
		if next.K != ce.K {
			return nil, fmt.Errorf("core: inconsistent data labels: edge %v does not use the cycle production %d", next, ce.K)
		}
		rPrime, jPrime := ce.I, next.I
		if rPrime > jPrime {
			return nil, nil
		}
		o, err := outProd(shared + 1)
		if err != nil {
			return nil, err
		}
		oChain, err := vl.edgeMatrix(qc, RecursiveEdge(el.S, el.T+j, i-j), true)
		if err != nil {
			return nil, err
		}
		z, err := vl.edgeZ(qc, ce.K, rPrime, jPrime)
		if err != nil {
			return nil, err
		}
		in, err := inProd(shared + 2)
		if err != nil {
			return nil, err
		}
		ot := qc.transpose(o)
		t1 := vl.mulScratch(qc, ot, qc.transpose(oChain))
		t2 := vl.mulScratch(qc, t1, z)
		return vl.mulScratch(qc, t2, in), nil

	default:
		return nil, fmt.Errorf("core: inconsistent data labels: identical recursive edges %v treated as divergent", el)
	}
}
