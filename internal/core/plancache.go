package core

import (
	"repro/internal/boolmat"
	"repro/internal/safety"
)

// PlanCache is the plan-scoped promotion of the per-query closure memo: one
// cache shared by every query a plan (or a worker's whole batch) executes, so
// a plan never recomputes a closure, a chain product, or a path-visibility
// check it has already paid for. It is keyed to one ItemIndex — i.e. one
// pinned step prefix (epoch) of one run — because the node IDs of the cached
// products and visibility bits are only meaningful against that index.
//
// Attaching a PlanCache is strictly opt-in (QuerySession.EnsurePlan). A bare
// queryCtx keeps the query-state-honesty invariant of the Figure 20
// experiment — closures born empty on every query — while an attached plan
// deliberately amortizes them, which is exactly what the batch engine and the
// set-query executor want: one worker's claim block charges the graph search
// once, not per query.
//
// A PlanCache is confined to one QuerySession and therefore one goroutine;
// none of its maps are locked.
type PlanCache struct {
	idx *ItemIndex // nil for point-query-only caches

	// closures amortizes the graph-search path of VariantSpaceEfficient
	// across the plan. Keyed by label too: one plan may scan several labels
	// (Between touches up to three).
	closures map[planClosureKey]*safety.Closure

	// prods caches chain products of edge matrices along an interned path
	// suffix, cloned out of the query context's scratch arena so they survive
	// arena rewinds. Keyed by (label, node, from, inputs-or-outputs).
	prods map[prodKey]*boolmat.Matrix

	// visible caches pathVisible per (label, interned path node).
	visible map[visKey]bool

	// visRows caches, per label, the 1×(items+1) bitset row of item IDs
	// visible in that label's view.
	visRows map[*ViewLabel]*boolmat.Matrix
}

type planClosureKey struct {
	vl *ViewLabel
	k  int
}

type prodKey struct {
	vl      *ViewLabel
	node    int32
	from    int32
	outputs bool
}

type visKey struct {
	vl   *ViewLabel
	node int32
}

func newPlanCache(idx *ItemIndex) *PlanCache {
	return &PlanCache{idx: idx}
}

// Index returns the item index the cache is keyed to (nil for point-query
// caches).
func (pc *PlanCache) Index() *ItemIndex { return pc.idx }

// closureFor mirrors queryCtx's per-query closure memo at plan scope.
func (pc *PlanCache) closureFor(vl *ViewLabel, k int) (*safety.Closure, bool) {
	cl, ok := pc.closures[planClosureKey{vl, k}]
	return cl, ok
}

func (pc *PlanCache) putClosure(vl *ViewLabel, k int, cl *safety.Closure) {
	if pc.closures == nil {
		pc.closures = map[planClosureKey]*safety.Closure{}
	}
	pc.closures[planClosureKey{vl, k}] = cl
}
