package core

// Differential test for the Matrix-Free FVL mode (Section 6.4): the
// short-circuited decoding must agree with plain decoding on every query,
// for every variant, across the randomized workload generators — white-box,
// black-box (where the short cuts actually fire) and grey-box views over
// randomly derived runs.

import (
	"math/rand"
	"testing"

	"repro/internal/run"
	"repro/internal/workloads"
)

func TestMatrixFreeAgreesWithPlainDecoding(t *testing.T) {
	spec := workloads.BioAID()
	scheme, err := NewScheme(spec)
	if err != nil {
		t.Fatal(err)
	}
	variants := []Variant{VariantSpaceEfficient, VariantDefault, VariantQueryEfficient}
	modes := []workloads.DependencyMode{workloads.WhiteBox, workloads.BlackBox, workloads.GreyBox}

	for seed := int64(40); seed < 42; seed++ {
		r, err := workloads.RandomRun(spec, workloads.RunOptions{TargetSize: 400, Rand: rand.New(rand.NewSource(seed))})
		if err != nil {
			t.Fatal(err)
		}
		labeler, err := scheme.LabelRun(r)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range modes {
			v, err := workloads.RandomView(spec, workloads.ViewOptions{
				Name: mode.String(), Composites: 8, Mode: mode, Rand: rand.New(rand.NewSource(seed + 100)),
			})
			if err != nil {
				t.Fatal(err)
			}
			proj, err := run.Project(r, v)
			if err != nil {
				t.Fatal(err)
			}
			visible := proj.VisibleItems()
			rng := rand.New(rand.NewSource(seed + 200))
			pairs := make([][2]*DataLabel, 200)
			for i := range pairs {
				d1, _ := labeler.Label(visible[rng.Intn(len(visible))])
				d2, _ := labeler.Label(visible[rng.Intn(len(visible))])
				pairs[i] = [2]*DataLabel{d1, d2}
			}
			for _, variant := range variants {
				vl, err := scheme.LabelView(v, variant)
				if err != nil {
					t.Fatalf("labeling %s view (%v): %v", mode, variant, err)
				}
				mf := vl.WithMatrixFree()
				for _, p := range pairs {
					plain, err := vl.DependsOn(p[0], p[1])
					if err != nil {
						t.Fatalf("plain DependsOn (%s, %v): %v", mode, variant, err)
					}
					free, err := mf.DependsOn(p[0], p[1])
					if err != nil {
						t.Fatalf("matrix-free DependsOn (%s, %v): %v", mode, variant, err)
					}
					if plain != free {
						t.Fatalf("matrix-free decoding disagrees on %s view, variant %v: plain=%v free=%v",
							mode, variant, plain, free)
					}
				}
			}
		}
	}
}
