package core

// Remote labeling: the pieces that let the dynamic labeling algorithm run
// split across a coordinator and N label shards. The coordinator owns the
// run's structure and the compressed parse tree (a paths-only tracker); it
// resolves every new item's port-owner paths and ships them to the owning
// shard as RemoteItems. The shard assigns labels with LabelRemote — byte for
// byte the labels OnInit/OnStep would have assigned — without ever seeing
// the run. The Shard interface in internal/shard stays narrow because this
// is its entire data contract.

import (
	"fmt"
)

// NewPathTracker returns a paths-only labeler: OnInit and OnStep maintain
// the compressed parse tree exactly as a full labeler would, but no data
// labels are assigned. PathOf exposes the tracked paths.
func (s *Scheme) NewPathTracker() *RunLabeler {
	l := s.NewRunLabeler()
	l.pathsOnly = true
	return l
}

// RestorePathTracker rebuilds a paths-only tracker from persisted frontier
// paths (see FrontierPaths), for resuming a sharded coordinator from a
// structural checkpoint.
func (s *Scheme) RestorePathTracker(paths map[int][]EdgeLabel) (*RunLabeler, error) {
	l, err := s.RestoreRunLabeler(nil, paths)
	if err != nil {
		return nil, err
	}
	l.pathsOnly = true
	return l, nil
}

// PathOf returns the parse-tree path tracked for the given module instance.
// The returned slice is the tracker's own storage: callers must treat it as
// read-only. Paths are immutable once stored (appendEdge always allocates),
// so sharing is safe across goroutines that observe the store happen-before.
func (l *RunLabeler) PathOf(instanceID int) ([]EdgeLabel, bool) {
	p, ok := l.instPath[instanceID]
	return p, ok
}

// RemotePort names one endpoint of a data item by the parse-tree path of the
// port's owning instance plus the port index — everything portLabel needs.
// Path is read-only shared state; LabelRemote copies it into the label.
type RemotePort struct {
	Path []EdgeLabel
	Port int
}

// RemoteItem is one data item as shipped to its owning shard: the item ID
// and its source/destination ports. A nil Src marks an initial input (the
// label carries only an In half); a nil Dst marks a final output (Out only).
type RemoteItem struct {
	ID  int
	Src *RemotePort
	Dst *RemotePort
}

func remotePortLabel(p *RemotePort) *PortLabel {
	return &PortLabel{Path: append([]EdgeLabel(nil), p.Path...), Port: p.Port}
}

// LabelRemote assigns labels for a batch of remotely-described items,
// storing them in the labeler and returning them in input order. The labels
// are byte-identical to what OnInit/OnStep assign for the same items:
// Src-side Out half, Dst-side In half, each a copy of the owner path plus
// the port index. Labels are write-once — relabeling an ID fails.
func (l *RunLabeler) LabelRemote(items []RemoteItem) ([]*DataLabel, error) {
	out := make([]*DataLabel, len(items))
	for i, item := range items {
		if item.ID <= 0 {
			return nil, fmt.Errorf("core: remote item has invalid ID %d", item.ID)
		}
		if _, dup := l.labels[item.ID]; dup {
			return nil, fmt.Errorf("core: remote item %d already labeled", item.ID)
		}
		if item.Src == nil && item.Dst == nil {
			return nil, fmt.Errorf("core: remote item %d has neither source nor destination port", item.ID)
		}
		d := &DataLabel{}
		if item.Src != nil {
			d.Out = remotePortLabel(item.Src)
		}
		if item.Dst != nil {
			d.In = remotePortLabel(item.Dst)
		}
		l.labels[item.ID] = d
		out[i] = d
	}
	return out, nil
}

// RestoreSparseRunLabeler rebuilds a shard's labeler from persisted state:
// labels[i] belongs to item ids[i]. Unlike RestoreRunLabeler the IDs need
// not be contiguous — a shard owns an interleaved slice of the ID space —
// but they must be strictly increasing (shard-local production order), and
// every label must be non-nil.
func (s *Scheme) RestoreSparseRunLabeler(ids []int, labels []*DataLabel) (*RunLabeler, error) {
	if len(ids) != len(labels) {
		return nil, fmt.Errorf("core: sparse restore has %d ids but %d labels", len(ids), len(labels))
	}
	l := s.NewRunLabeler()
	prev := 0
	for i, id := range ids {
		if id <= prev {
			return nil, fmt.Errorf("core: sparse restore ids not strictly increasing at index %d (%d after %d)", i, id, prev)
		}
		if labels[i] == nil {
			return nil, fmt.Errorf("core: restored label for item %d is nil", id)
		}
		l.labels[id] = labels[i]
		prev = id
	}
	return l, nil
}
