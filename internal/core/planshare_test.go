package core

// Tests for the epoch-keyed plan-cache share (ROADMAP: "next is sharing it
// epoch-keyed across sessions"): a cache released by one query session is
// handed — warm — to the next session at the same pinned item index, while
// sessions at a different index (a different epoch or run) get a fresh one.

import (
	"math/rand"
	"testing"

	"repro/internal/view"
	"repro/internal/workloads"
)

// sharedScanFixture labels a paper-workload run and returns a view label
// plus the item index of its completed prefix.
func sharedScanFixture(t *testing.T) (*ViewLabel, *RunLabeler, *ItemIndex) {
	t.Helper()
	spec := workloads.PaperExample()
	scheme, err := NewScheme(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := workloads.RandomRun(spec, workloads.RunOptions{TargetSize: 120, Rand: rand.New(rand.NewSource(33))})
	if err != nil {
		t.Fatal(err)
	}
	labeler, err := scheme.LabelRun(r)
	if err != nil {
		t.Fatal(err)
	}
	vl, err := scheme.LabelView(view.Default(spec), VariantDefault)
	if err != nil {
		t.Fatal(err)
	}
	return vl, labeler, BuildItemIndex(0, labeler.Count(), labeler.Label)
}

// TestPlanShareHitsAcrossSessionsAtSameEpoch is the satellite lock of PR 9:
// two query sessions at the same epoch (the same pinned ItemIndex) share one
// plan cache through the PlanShare — the second session starts with every
// chain product and visibility bit the first one computed, and recomputes
// none of them.
func TestPlanShareHitsAcrossSessionsAtSameEpoch(t *testing.T) {
	vl, _, idx := sharedScanFixture(t)
	var share PlanShare

	s1 := NewQuerySession()
	pc := share.Acquire(idx)
	s1.AttachPlan(pc)
	for x := 1; x <= idx.Items(); x++ {
		if _, err := s1.DepsRow(vl, idx, x); err != nil {
			t.Fatalf("session 1 DepsRow(%d): %v", x, err)
		}
	}
	if len(pc.prods) == 0 || len(pc.visible) == 0 {
		t.Fatalf("session 1 left the cache cold: %d products, %d visibility bits", len(pc.prods), len(pc.visible))
	}
	warmProds := make(map[prodKey]any, len(pc.prods))
	for k, m := range pc.prods {
		warmProds[k] = m
	}
	share.Release(s1.DetachPlan())
	s1.Close()

	// The second session at the same epoch must be handed the same cache —
	// a cache hit, observable as pointer identity — and reuse its products.
	s2 := NewQuerySession()
	defer s2.Close()
	pc2 := share.Acquire(idx)
	if pc2 != pc {
		t.Fatal("second session at the same index did not get the released cache back")
	}
	s2.AttachPlan(pc2)
	for x := 1; x <= idx.Items(); x++ {
		if _, err := s2.DepsRow(vl, idx, x); err != nil {
			t.Fatalf("session 2 DepsRow(%d): %v", x, err)
		}
	}
	for k, m := range pc2.prods {
		if prev, ok := warmProds[k]; ok && prev != any(m) {
			t.Fatalf("chain product %v was recomputed despite the shared cache", k)
		}
	}
	share.Release(s2.DetachPlan())

	// A different index — another epoch, another run — must mint a fresh
	// cache: its node IDs would be meaningless against the shared one.
	other := BuildItemIndex(7, 0, func(int) (*DataLabel, bool) { return nil, false })
	if share.Acquire(other) == pc {
		t.Fatal("a session at a different index was handed the other epoch's cache")
	}
}

// TestPlanShareOwnershipIsExclusive: while a cache is out, a concurrent
// acquire at the same index gets its own cache — the share never aliases a
// live cache into two sessions.
func TestPlanShareOwnershipIsExclusive(t *testing.T) {
	idx := BuildItemIndex(1, 0, func(int) (*DataLabel, bool) { return nil, false })
	var share PlanShare
	a := share.Acquire(idx)
	b := share.Acquire(idx)
	if a == b {
		t.Fatal("two outstanding acquires share one cache")
	}
	share.Release(a)
	share.Release(b)
	if got := share.IdleCaches(idx); got != 2 {
		t.Fatalf("idle caches = %d, want 2", got)
	}
	if c := share.Acquire(idx); c != a && c != b {
		t.Fatal("acquire after release minted a fresh cache instead of reusing an idle one")
	}
}

// TestPlanShareEvictsStaleEpochs: the share tracks a bounded number of
// distinct indexes; producing past the window forgets the oldest epoch's
// caches, and late releases against a forgotten epoch are dropped rather
// than resurrected.
func TestPlanShareEvictsStaleEpochs(t *testing.T) {
	var share PlanShare
	mk := func(epoch uint64) *ItemIndex {
		return BuildItemIndex(epoch, 0, func(int) (*DataLabel, bool) { return nil, false })
	}
	first := mk(1)
	firstPC := share.Acquire(first)
	share.Release(firstPC)
	if share.IdleCaches(first) != 1 {
		t.Fatal("first epoch's cache was not retained")
	}
	var last *ItemIndex
	for e := uint64(2); e <= uint64(maxShareIndexes)+1; e++ {
		last = mk(e)
		share.Release(share.Acquire(last))
	}
	if share.IdleCaches(first) != 0 {
		t.Fatalf("oldest epoch survived %d newer ones (window is %d)", maxShareIndexes, maxShareIndexes)
	}
	if share.IdleCaches(last) != 1 {
		t.Fatal("newest epoch's cache was not retained")
	}
	// A cache that was out during the eviction must not re-enter the share.
	stale := share.Acquire(first) // re-admits first; evicts the then-oldest
	held := share.Acquire(mk(100))
	for e := uint64(101); e < 101+uint64(maxShareIndexes); e++ {
		share.Release(share.Acquire(mk(e)))
	}
	share.Release(held) // its index was evicted while it was out
	if share.IdleCaches(held.Index()) != 0 {
		t.Fatal("a late release resurrected an evicted epoch")
	}
	share.Release(stale)
}
