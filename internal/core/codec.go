package core

import (
	"fmt"
	"math/bits"
)

// bitWriter accumulates bits most-significant-first into a byte slice.
type bitWriter struct {
	buf  []byte
	nbit int
}

func (w *bitWriter) writeBit(b uint) {
	if w.nbit%8 == 0 {
		w.buf = append(w.buf, 0)
	}
	if b != 0 {
		w.buf[len(w.buf)-1] |= 1 << uint(7-w.nbit%8)
	}
	w.nbit++
}

func (w *bitWriter) writeBits(v uint64, width int) {
	for i := width - 1; i >= 0; i-- {
		w.writeBit(uint(v>>uint(i)) & 1)
	}
}

// writeGamma writes v >= 1 in Elias-gamma code: the unary length of the
// binary representation followed by its low-order bits. Values below 1 are
// unencodable and panic; callers shift their ranges to be >= 1.
func (w *bitWriter) writeGamma(v uint64) {
	if v < 1 {
		panic("core: gamma code requires v >= 1")
	}
	n := bits.Len64(v)
	for i := 0; i < n-1; i++ {
		w.writeBit(0)
	}
	w.writeBits(v, n)
}

func (w *bitWriter) len() int { return w.nbit }

type bitReader struct {
	buf  []byte
	pos  int
	nbit int
}

func newBitReader(buf []byte, nbit int) *bitReader { return &bitReader{buf: buf, nbit: nbit} }

func (r *bitReader) readBit() (uint, error) {
	if r.pos >= r.nbit {
		return 0, fmt.Errorf("core: bit stream exhausted")
	}
	b := (r.buf[r.pos/8] >> uint(7-r.pos%8)) & 1
	r.pos++
	return uint(b), nil
}

func (r *bitReader) readBits(width int) (uint64, error) {
	var v uint64
	for i := 0; i < width; i++ {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

func (r *bitReader) readGamma() (uint64, error) {
	zeros := 0
	for {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		zeros++
		// A 63-bit unary prefix would decode to a value that overflows
		// uint64; no writer emits one, so the stream is corrupt.
		if zeros > 62 {
			return 0, fmt.Errorf("core: gamma code with %d-bit unary prefix exceeds the representable range", zeros+1)
		}
	}
	v := uint64(1)
	for i := 0; i < zeros; i++ {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// bitsFor returns the number of bits needed to store values in [0, max].
func bitsFor(max int) int {
	if max <= 0 {
		return 1
	}
	return bits.Len(uint(max))
}

// Codec encodes data labels into a compact bit string and measures their
// length in bits. Quantities bounded by the (constant-size) specification —
// production index k, cycle index s, cycle offset t, port index — use fixed
// widths derived from the specification; child positions i, which grow with
// the run, use Elias-gamma codes; the common prefix of the output-port path
// and the input-port path is factored out, as suggested in Section 4.2.2.
//
// Decode treats its input as untrusted: every fixed-width field is checked
// against the real maximum the width was derived from (bitsFor rounds up to
// whole bits, so the widths admit values past the maxima), and the stream
// must be consumed exactly, so Decode accepts Encode's output and nothing
// else.
type Codec struct {
	kBits    int
	sBits    int
	tBits    int
	portBits int

	// The real maxima behind the widths above, used to reject decoded
	// values that a width admits but no writer can produce.
	maxK    int // production count
	maxS    int // cycle count
	maxT    int // longest cycle length
	maxPort int // largest port count of any module
}

// NewCodec derives the fixed field widths from the scheme's specification.
func NewCodec(s *Scheme) *Codec {
	maxPort := 0
	for _, m := range s.Spec.Grammar.Modules {
		if m.In > maxPort {
			maxPort = m.In
		}
		if m.Out > maxPort {
			maxPort = m.Out
		}
	}
	maxCycleLen := 1
	for _, c := range s.Cycles {
		if c.Len() > maxCycleLen {
			maxCycleLen = c.Len()
		}
	}
	return &Codec{
		kBits:    bitsFor(len(s.Spec.Grammar.Productions)),
		sBits:    bitsFor(len(s.Cycles)),
		tBits:    bitsFor(maxCycleLen),
		portBits: bitsFor(maxPort),
		maxK:     len(s.Spec.Grammar.Productions),
		maxS:     len(s.Cycles),
		maxT:     maxCycleLen,
		maxPort:  maxPort,
	}
}

func (c *Codec) writeEdge(w *bitWriter, e EdgeLabel) {
	if e.Recursive {
		w.writeBit(1)
		w.writeBits(uint64(e.S), c.sBits)
		w.writeBits(uint64(e.T), c.tBits)
		w.writeGamma(uint64(e.I))
	} else {
		w.writeBit(0)
		w.writeBits(uint64(e.K), c.kBits)
		w.writeGamma(uint64(e.I))
	}
}

func (c *Codec) readEdge(r *bitReader) (EdgeLabel, error) {
	rec, err := r.readBit()
	if err != nil {
		return EdgeLabel{}, err
	}
	if rec == 1 {
		s, err := r.readBits(c.sBits)
		if err != nil {
			return EdgeLabel{}, err
		}
		if s < 1 || s > uint64(c.maxS) {
			return EdgeLabel{}, fmt.Errorf("core: decoded cycle index %d out of range [1, %d]", s, c.maxS)
		}
		t, err := r.readBits(c.tBits)
		if err != nil {
			return EdgeLabel{}, err
		}
		if t < 1 || t > uint64(c.maxT) {
			return EdgeLabel{}, fmt.Errorf("core: decoded cycle offset %d out of range [1, %d]", t, c.maxT)
		}
		i, err := r.readGamma()
		if err != nil {
			return EdgeLabel{}, err
		}
		return RecursiveEdge(int(s), int(t), int(i)), nil
	}
	k, err := r.readBits(c.kBits)
	if err != nil {
		return EdgeLabel{}, err
	}
	if k < 1 || k > uint64(c.maxK) {
		return EdgeLabel{}, fmt.Errorf("core: decoded production index %d out of range [1, %d]", k, c.maxK)
	}
	i, err := r.readGamma()
	if err != nil {
		return EdgeLabel{}, err
	}
	return NonRecursiveEdge(int(k), int(i)), nil
}

func (c *Codec) writePath(w *bitWriter, path []EdgeLabel) {
	w.writeGamma(uint64(len(path) + 1))
	for _, e := range path {
		c.writeEdge(w, e)
	}
}

func (c *Codec) readPath(r *bitReader) ([]EdgeLabel, error) {
	n, err := r.readGamma()
	if err != nil {
		return nil, err
	}
	count := int(n) - 1
	// Untrusted input: a corrupted gamma code can claim up to 2^62 edges.
	// Every encoded edge costs at least 2 bits (the recursive flag plus a
	// one-bit gamma terminator), so a count beyond half the remaining bit
	// budget cannot be honored by any well-formed stream — reject it before
	// allocating, instead of attempting an unbounded allocation that only
	// fails once the stream runs dry.
	if remaining := r.nbit - r.pos; count > remaining/2 {
		return nil, fmt.Errorf("core: path claims %d edges but only %d bits remain", count, remaining)
	}
	path := make([]EdgeLabel, 0, count)
	for i := 0; i < count; i++ {
		e, err := c.readEdge(r)
		if err != nil {
			return nil, err
		}
		path = append(path, e)
	}
	return path, nil
}

// Encode serializes a data label; it returns the byte buffer and the exact
// number of significant bits (the label length reported by the experiments).
func (c *Codec) Encode(d *DataLabel) ([]byte, int) {
	w := &bitWriter{}
	switch {
	case d.Out == nil && d.In == nil:
		w.writeBits(0, 2)
	case d.Out == nil:
		w.writeBits(1, 2) // initial input
		c.writePath(w, d.In.Path)
		w.writeBits(uint64(d.In.Port), c.portBits)
	case d.In == nil:
		w.writeBits(2, 2) // final output
		c.writePath(w, d.Out.Path)
		w.writeBits(uint64(d.Out.Port), c.portBits)
	default:
		w.writeBits(3, 2) // intermediate: shared prefix + two suffixes
		shared := commonPrefixLen(d.Out.Path, d.In.Path)
		c.writePath(w, d.Out.Path[:shared])
		c.writePath(w, d.Out.Path[shared:])
		w.writeBits(uint64(d.Out.Port), c.portBits)
		c.writePath(w, d.In.Path[shared:])
		w.writeBits(uint64(d.In.Port), c.portBits)
	}
	return w.buf, w.len()
}

// SizeBits returns the encoded length of the label in bits.
func (c *Codec) SizeBits(d *DataLabel) int {
	_, n := c.Encode(d)
	return n
}

// EncodePath serializes a bare parse-tree path (a sequence of edge labels) in
// the codec's bit-level wire format; it returns the byte buffer and the exact
// number of significant bits. Checkpoints use it to persist the labeler's
// frontier paths with the same encoding — and therefore the same strict
// decoder — as data labels.
func (c *Codec) EncodePath(path []EdgeLabel) ([]byte, int) {
	w := &bitWriter{}
	c.writePath(w, path)
	return w.buf, w.len()
}

// DecodePath parses a path previously produced by EncodePath. The input is
// untrusted: every decoded edge is checked against the specification-derived
// maxima, the declared bit count must fit the buffer exactly, and the stream
// must be consumed exactly, so for every (buf, nbit) pair there is at most
// one path — the one EncodePath produces.
func (c *Codec) DecodePath(buf []byte, nbit int) ([]EdgeLabel, error) {
	if nbit < 0 || nbit > 8*len(buf) {
		return nil, fmt.Errorf("core: declared bit count %d does not fit a %d-byte buffer", nbit, len(buf))
	}
	if want := (nbit + 7) / 8; len(buf) != want {
		return nil, fmt.Errorf("core: %d-bit path must occupy exactly %d bytes, got %d", nbit, want, len(buf))
	}
	if pad := 8*len(buf) - nbit; pad > 0 && buf[len(buf)-1]&(1<<uint(pad)-1) != 0 {
		return nil, fmt.Errorf("core: nonzero padding bits after the %d-bit path", nbit)
	}
	r := newBitReader(buf, nbit)
	path, err := c.readPath(r)
	if err != nil {
		return nil, err
	}
	if r.pos != r.nbit {
		return nil, fmt.Errorf("core: %d unconsumed trailing bits after a complete path", r.nbit-r.pos)
	}
	if path == nil {
		path = []EdgeLabel{}
	}
	return path, nil
}

// Decode parses a label previously produced by Encode. The input is
// untrusted (labels may arrive from storage or the network): decoded fields
// are checked against the specification-derived maxima, the declared bit
// count must fit the buffer, and the stream must be consumed exactly —
// trailing bits are rejected, so for every (buf, nbit) pair there is at most
// one label, the one Encode produces.
func (c *Codec) Decode(buf []byte, nbit int) (*DataLabel, error) {
	if nbit < 0 || nbit > 8*len(buf) {
		return nil, fmt.Errorf("core: declared bit count %d does not fit a %d-byte buffer", nbit, len(buf))
	}
	if want := (nbit + 7) / 8; len(buf) != want {
		return nil, fmt.Errorf("core: %d-bit label must occupy exactly %d bytes, got %d", nbit, want, len(buf))
	}
	if pad := 8*len(buf) - nbit; pad > 0 && buf[len(buf)-1]&(1<<uint(pad)-1) != 0 {
		return nil, fmt.Errorf("core: nonzero padding bits after the %d-bit label", nbit)
	}
	r := newBitReader(buf, nbit)
	d, err := c.decodeBody(r)
	if err != nil {
		return nil, err
	}
	if r.pos != r.nbit {
		return nil, fmt.Errorf("core: %d unconsumed trailing bits after a complete label", r.nbit-r.pos)
	}
	return d, nil
}

func (c *Codec) decodeBody(r *bitReader) (*DataLabel, error) {
	kind, err := r.readBits(2)
	if err != nil {
		return nil, err
	}
	readPort := func() (*PortLabel, error) {
		path, err := c.readPath(r)
		if err != nil {
			return nil, err
		}
		p, err := r.readBits(c.portBits)
		if err != nil {
			return nil, err
		}
		if p >= uint64(c.maxPort) {
			return nil, fmt.Errorf("core: decoded port index %d out of range [0, %d)", p, c.maxPort)
		}
		return &PortLabel{Path: path, Port: int(p)}, nil
	}
	switch kind {
	case 0:
		return &DataLabel{}, nil
	case 1:
		in, err := readPort()
		if err != nil {
			return nil, err
		}
		return &DataLabel{In: in}, nil
	case 2:
		out, err := readPort()
		if err != nil {
			return nil, err
		}
		return &DataLabel{Out: out}, nil
	default:
		shared, err := c.readPath(r)
		if err != nil {
			return nil, err
		}
		outSuffix, err := c.readPath(r)
		if err != nil {
			return nil, err
		}
		outPort, err := r.readBits(c.portBits)
		if err != nil {
			return nil, err
		}
		inSuffix, err := c.readPath(r)
		if err != nil {
			return nil, err
		}
		inPort, err := r.readBits(c.portBits)
		if err != nil {
			return nil, err
		}
		if outPort >= uint64(c.maxPort) || inPort >= uint64(c.maxPort) {
			return nil, fmt.Errorf("core: decoded port index (%d, %d) out of range [0, %d)", outPort, inPort, c.maxPort)
		}
		// Encode factors out the *maximal* common prefix, so suffixes that
		// both start with the same edge can only come from a non-canonical
		// writer; accepting them would let two distinct streams decode to
		// the same label.
		if len(outSuffix) > 0 && len(inSuffix) > 0 && outSuffix[0] == inSuffix[0] {
			return nil, fmt.Errorf("core: non-canonical shared prefix: both path suffixes start with %v", outSuffix[0])
		}
		out := &PortLabel{Path: append(append([]EdgeLabel(nil), shared...), outSuffix...), Port: int(outPort)}
		in := &PortLabel{Path: append(append([]EdgeLabel(nil), shared...), inSuffix...), Port: int(inPort)}
		return &DataLabel{Out: out, In: in}, nil
	}
}
