package core_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/run"
	"repro/internal/view"
	"repro/internal/workloads"
)

// recordingObserver snapshots every label as soon as it is assigned and
// verifies, after every later step, that no previously assigned label was
// modified — the defining property of a dynamic labeling scheme
// (Definition 10: "the assigned labels cannot be modified subsequently").
type recordingObserver struct {
	t       *testing.T
	labeler *core.RunLabeler
	frozen  map[int]string
}

func (o *recordingObserver) OnInit(r *run.Run) error {
	if err := o.labeler.OnInit(r); err != nil {
		return err
	}
	o.snapshot()
	return nil
}

func (o *recordingObserver) OnStep(r *run.Run, s *run.Step) error {
	if err := o.labeler.OnStep(r, s); err != nil {
		return err
	}
	o.verify()
	o.snapshot()
	return nil
}

func (o *recordingObserver) snapshot() {
	for id, l := range o.labeler.Labels() {
		if _, ok := o.frozen[id]; !ok {
			o.frozen[id] = l.String()
		}
	}
}

func (o *recordingObserver) verify() {
	for id, want := range o.frozen {
		got, ok := o.labeler.Label(id)
		if !ok {
			o.t.Fatalf("label for item %d disappeared", id)
		}
		if got.String() != want {
			o.t.Fatalf("label for item %d changed from %s to %s", id, want, got)
		}
	}
}

func TestLabelsAreNeverModified(t *testing.T) {
	spec := workloads.PaperExample()
	scheme, err := core.NewScheme(spec)
	if err != nil {
		t.Fatal(err)
	}
	r := run.New(spec)
	obs := &recordingObserver{t: t, labeler: scheme.NewRunLabeler(), frozen: map[int]string{}}
	if err := r.AddObserver(obs); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for r.Size() < 200 {
		frontier := r.Frontier()
		if len(frontier) == 0 {
			break
		}
		inst, _ := r.Instance(frontier[rng.Intn(len(frontier))])
		prods := spec.Grammar.ProductionsFor(inst.Module)
		if _, err := r.Apply(inst.ID, prods[rng.Intn(len(prods))]); err != nil {
			t.Fatal(err)
		}
	}
	if obs.labeler.Count() != r.Size() {
		t.Fatalf("labeled %d of %d items", obs.labeler.Count(), r.Size())
	}
}

func TestObserverAttachedAfterDerivationSeesSameLabels(t *testing.T) {
	spec := workloads.PaperExample()
	scheme, err := core.NewScheme(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := workloads.RandomRun(spec, workloads.RunOptions{TargetSize: 120, Rand: rand.New(rand.NewSource(23))})
	if err != nil {
		t.Fatal(err)
	}
	online := scheme.NewRunLabeler()
	// Replays the recorded derivation.
	if err := r.AddObserver(online); err != nil {
		t.Fatal(err)
	}
	replayed, err := scheme.LabelRun(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, item := range r.Items {
		a, _ := online.Label(item.ID)
		b, _ := replayed.Label(item.ID)
		if a.String() != b.String() {
			t.Fatalf("item %d: online label %s != replayed label %s", item.ID, a, b)
		}
	}
}

func TestLabelLengthGrowsLogarithmically(t *testing.T) {
	spec := workloads.PaperExample()
	scheme, err := core.NewScheme(spec)
	if err != nil {
		t.Fatal(err)
	}
	codec := scheme.Codec()
	sizes := []int{250, 500, 1000, 2000, 4000}
	maxBits := make([]int, len(sizes))
	for si, size := range sizes {
		r, err := workloads.RandomRun(spec, workloads.RunOptions{TargetSize: size, Rand: rand.New(rand.NewSource(int64(40 + si)))})
		if err != nil {
			t.Fatal(err)
		}
		labeler, err := scheme.LabelRun(r)
		if err != nil {
			t.Fatal(err)
		}
		for _, item := range r.Items {
			l, _ := labeler.Label(item.ID)
			if n := codec.SizeBits(l); n > maxBits[si] {
				maxBits[si] = n
			}
		}
		// O(log n) with a small constant: allow a generous 12*log2(n)+64 bits.
		bound := int(12*math.Log2(float64(r.Size()))) + 64
		if maxBits[si] > bound {
			t.Fatalf("run of size %d has a %d-bit label, exceeding the O(log n) bound %d", r.Size(), maxBits[si], bound)
		}
	}
	// Doubling the run size must not multiply the label length: the growth
	// from the smallest to the largest run (16x data) stays within +64 bits.
	if maxBits[len(maxBits)-1] > maxBits[0]+64 {
		t.Fatalf("label length grew from %d to %d bits over a 16x size increase; not logarithmic", maxBits[0], maxBits[len(maxBits)-1])
	}
}

func TestBasicSchemeLabelsGrowLinearlyOnFigure10(t *testing.T) {
	spec := workloads.Figure10Example()
	scheme, err := core.NewSchemeBasic(spec)
	if err != nil {
		t.Fatal(err)
	}
	codec := scheme.Codec()
	max := func(size int, seed int64) int {
		r, err := workloads.RandomRun(spec, workloads.RunOptions{TargetSize: size, Rand: rand.New(rand.NewSource(seed))})
		if err != nil {
			t.Fatal(err)
		}
		labeler, err := scheme.LabelRun(r)
		if err != nil {
			t.Fatal(err)
		}
		m := 0
		for _, item := range r.Items {
			l, _ := labeler.Label(item.ID)
			if n := codec.SizeBits(l); n > m {
				m = n
			}
		}
		return m
	}
	small := max(40, 61)
	large := max(400, 62)
	// The basic parse tree has depth proportional to the run, so a 10x larger
	// run must produce clearly longer labels (Theorem 6 lower bound is linear).
	if large < 4*small {
		t.Fatalf("basic-scheme labels grew only from %d to %d bits on a 10x larger run; expected roughly linear growth", small, large)
	}
}

func TestRunLabelerRejectsForeignRun(t *testing.T) {
	specA := workloads.PaperExample()
	specB := workloads.PaperExample()
	scheme, err := core.NewScheme(specA)
	if err != nil {
		t.Fatal(err)
	}
	r := run.New(specB)
	if _, err := scheme.LabelRun(r); err == nil {
		t.Fatalf("LabelRun must reject runs derived from a different specification")
	}
}

func TestViewLabelSizesAreOrderedAcrossVariants(t *testing.T) {
	spec := workloads.PaperExample()
	scheme, err := core.NewScheme(spec)
	if err != nil {
		t.Fatal(err)
	}
	v := view.Default(spec)
	var bits [3]int
	for i, variant := range allVariants {
		vl, err := scheme.LabelView(v, variant)
		if err != nil {
			t.Fatal(err)
		}
		bits[i] = vl.SizeBits()
		if bits[i] <= 0 {
			t.Fatalf("view label for %v has %d bits", variant, bits[i])
		}
	}
	if !(bits[0] <= bits[1] && bits[1] <= bits[2]) {
		t.Fatalf("view label sizes should grow from space-efficient to query-efficient, got %v", bits)
	}
	// All of them are constant-size: well under a kilobyte for this grammar.
	if bits[2] > 8*1024 {
		t.Fatalf("query-efficient view label is %d bits; expected a small constant", bits[2])
	}
}

func TestViewLabelStartDeps(t *testing.T) {
	spec := workloads.PaperExample()
	scheme, err := core.NewScheme(spec)
	if err != nil {
		t.Fatal(err)
	}
	vl, err := scheme.LabelView(view.Default(spec), core.VariantDefault)
	if err != nil {
		t.Fatal(err)
	}
	if !vl.StartDeps().IsFull() {
		t.Fatalf("λ*(S) of the default view over the paper example must be complete, got %v", vl.StartDeps())
	}
}
