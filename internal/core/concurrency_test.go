package core

// Concurrent-query tests: since the query-context refactor a ViewLabel is
// strictly read-only after construction, so one label must serve any number
// of goroutines at once, for all three variants — including the
// graph-search (space-efficient) path, whose per-query closure cache lives
// in the per-goroutine query context. Run with -race: these tests exist to
// catch shared mutable state reappearing on the query path.

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/run"
	"repro/internal/workloads"
)

type queryPair struct {
	d1, d2 *DataLabel
	want   bool
}

// concurrencyFixture labels one BioAID run and one medium grey-box view for
// every variant, and samples pairs with their expected answers (computed
// serially with the query-efficient label; all variants must agree).
func concurrencyFixture(t *testing.T, pairCount int) (map[Variant]*ViewLabel, []queryPair) {
	t.Helper()
	spec := workloads.BioAID()
	scheme, err := NewScheme(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := workloads.RandomRun(spec, workloads.RunOptions{TargetSize: 1500, Rand: rand.New(rand.NewSource(31))})
	if err != nil {
		t.Fatal(err)
	}
	labeler, err := scheme.LabelRun(r)
	if err != nil {
		t.Fatal(err)
	}
	v, err := workloads.RandomView(spec, workloads.ViewOptions{
		Name: "shared", Composites: 8, Mode: workloads.GreyBox, Rand: rand.New(rand.NewSource(32)),
	})
	if err != nil {
		t.Fatal(err)
	}
	labels := map[Variant]*ViewLabel{}
	for _, variant := range []Variant{VariantSpaceEfficient, VariantDefault, VariantQueryEfficient} {
		vl, err := scheme.LabelView(v, variant)
		if err != nil {
			t.Fatalf("labeling view (%v): %v", variant, err)
		}
		labels[variant] = vl
	}
	proj, err := run.Project(r, v)
	if err != nil {
		t.Fatal(err)
	}
	visible := proj.VisibleItems()
	rng := rand.New(rand.NewSource(33))
	pairs := make([]queryPair, pairCount)
	oracle := labels[VariantQueryEfficient]
	for i := range pairs {
		d1, _ := labeler.Label(visible[rng.Intn(len(visible))])
		d2, _ := labeler.Label(visible[rng.Intn(len(visible))])
		want, err := oracle.DependsOn(d1, d2)
		if err != nil {
			t.Fatal(err)
		}
		pairs[i] = queryPair{d1: d1, d2: d2, want: want}
	}
	return labels, pairs
}

// TestConcurrentMixedVariantQueries fires 12 goroutines — four per variant —
// against three shared view labels of the same view, every goroutine
// checking each answer against the serial oracle. Under -race this fails if
// any query ever writes label state.
func TestConcurrentMixedVariantQueries(t *testing.T) {
	labels, pairs := concurrencyFixture(t, 150)
	variants := []Variant{VariantSpaceEfficient, VariantDefault, VariantQueryEfficient}

	const goroutines = 12
	errc := make(chan error, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		variant := variants[g%len(variants)]
		vl := labels[variant]
		offset := g // start each goroutine elsewhere in the pair list
		go func() {
			defer wg.Done()
			for i := range pairs {
				p := pairs[(i+offset)%len(pairs)]
				got, err := vl.DependsOn(p.d1, p.d2)
				if err != nil {
					errc <- err
					return
				}
				if got != p.want {
					errc <- &mismatchError{variant: variant, got: got, want: p.want}
					return
				}
			}
			errc <- nil
		}()
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

type mismatchError struct {
	variant   Variant
	got, want bool
}

func (e *mismatchError) Error() string {
	return "concurrent query over variant " + e.variant.String() + " disagreed with the serial oracle"
}

// TestMatrixFreeCopySharesLabelSafely checks the WithMatrixFree contract:
// the shallow copy and the original answer queries concurrently (four
// goroutines each) and agree with each other.
func TestMatrixFreeCopySharesLabelSafely(t *testing.T) {
	labels, pairs := concurrencyFixture(t, 150)
	vl := labels[VariantQueryEfficient]
	mf := vl.WithMatrixFree()

	const perLabel = 4
	errc := make(chan error, 2*perLabel)
	var wg sync.WaitGroup
	wg.Add(2 * perLabel)
	for g := 0; g < 2*perLabel; g++ {
		label := vl
		if g%2 == 1 {
			label = mf
		}
		go func() {
			defer wg.Done()
			for _, p := range pairs {
				got, err := label.DependsOn(p.d1, p.d2)
				if err != nil {
					errc <- err
					return
				}
				if got != p.want {
					errc <- &mismatchError{variant: label.Variant(), got: got, want: p.want}
					return
				}
			}
			errc <- nil
		}()
	}
	wg.Wait()
	for g := 0; g < 2*perLabel; g++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

// TestConcurrentQuerySessions exercises the pinned-context path the batch
// engine uses: one QuerySession per goroutine, all against one shared
// space-efficient label (the variant whose queries actually populate the
// context's closure cache).
func TestConcurrentQuerySessions(t *testing.T) {
	labels, pairs := concurrencyFixture(t, 80)
	vl := labels[VariantSpaceEfficient]

	const goroutines = 8
	errc := make(chan error, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			s := NewQuerySession()
			defer s.Close()
			for _, p := range pairs {
				got, err := s.DependsOn(vl, p.d1, p.d2)
				if err != nil {
					errc <- err
					return
				}
				if got != p.want {
					errc <- &mismatchError{variant: vl.Variant(), got: got, want: p.want}
					return
				}
			}
			errc <- nil
		}()
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}
