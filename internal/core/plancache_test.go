package core

// Tests for the plan-scoped cache: the deliberate, opt-in inverse of the
// query-state-honesty invariant checked by querystate_test.go. A bare context
// drops closures every query; a context with a plan attached keeps them — and
// the set-query scans additionally keep chain products and visibility bits —
// for as long as the plan lives.

import (
	"math/rand"
	"testing"

	"repro/internal/view"
	"repro/internal/workloads"
)

func TestPlanAttachedContextReusesClosuresAcrossQueries(t *testing.T) {
	vl, l1, l2 := spaceEfficientQuery(t)
	s := NewQuerySession()
	defer s.Close()
	pc := s.EnsurePlan(nil)
	if _, err := s.DependsOn(vl, l1, l2); err != nil {
		t.Fatalf("first query: %v", err)
	}
	if len(pc.closures) == 0 {
		t.Fatal("plan cache did not capture the first query's closures")
	}
	captured := make(map[planClosureKey]any, len(pc.closures))
	for k, cl := range pc.closures {
		captured[k] = cl
	}
	if _, err := s.DependsOn(vl, l1, l2); err != nil {
		t.Fatalf("second query: %v", err)
	}
	for k, cl := range pc.closures {
		if prev, ok := captured[k]; ok && prev != any(cl) {
			t.Fatalf("closure %v was recomputed despite the plan cache", k)
		}
	}
	if len(s.qc.closures) != 0 {
		t.Fatal("per-query memo must stay empty while a plan serves closures")
	}
}

func TestPlanAttachedPointQueriesAllocateLessThanHonestOnes(t *testing.T) {
	vl, l1, l2 := spaceEfficientQuery(t)
	s := NewQuerySession()
	defer s.Close()
	s.EnsurePlan(nil)
	// Warm the plan, then measure steady state.
	if _, err := s.DependsOn(vl, l1, l2); err != nil {
		t.Fatal(err)
	}
	planAllocs := testing.AllocsPerRun(200, func() {
		if _, err := s.DependsOn(vl, l1, l2); err != nil {
			t.Fatal(err)
		}
	})
	honest := NewQuerySession()
	defer honest.Close()
	if _, err := honest.DependsOn(vl, l1, l2); err != nil {
		t.Fatal(err)
	}
	honestAllocs := testing.AllocsPerRun(200, func() {
		if _, err := honest.DependsOn(vl, l1, l2); err != nil {
			t.Fatal(err)
		}
	})
	if planAllocs >= honestAllocs {
		t.Fatalf("plan-attached query allocates %.0f/op, honest query %.0f/op — the plan cache saved nothing",
			planAllocs, honestAllocs)
	}
	t.Logf("space-efficient point query: %.0f allocs/op honest, %.0f allocs/op plan-attached", honestAllocs, planAllocs)
}

func TestEnsurePlanKeepsAndReplacesByIndex(t *testing.T) {
	s := NewQuerySession()
	defer s.Close()
	pc := s.EnsurePlan(nil)
	if s.EnsurePlan(nil) != pc {
		t.Fatal("EnsurePlan(nil) must keep the attached plan")
	}
	idx := BuildItemIndex(3, 0, func(int) (*DataLabel, bool) { return nil, false })
	pc2 := s.EnsurePlan(idx)
	if pc2 == pc {
		t.Fatal("EnsurePlan(idx) must replace an index-free plan")
	}
	if s.EnsurePlan(idx) != pc2 {
		t.Fatal("EnsurePlan with the same index must keep the plan")
	}
	other := BuildItemIndex(3, 0, func(int) (*DataLabel, bool) { return nil, false })
	if s.EnsurePlan(other) == pc2 {
		t.Fatal("EnsurePlan with a different index must mint a fresh plan")
	}
}

func TestSetScansCacheChainProductsAcrossQueries(t *testing.T) {
	spec := workloads.PaperExample()
	scheme, err := NewScheme(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := workloads.RandomRun(spec, workloads.RunOptions{TargetSize: 120, Rand: rand.New(rand.NewSource(21))})
	if err != nil {
		t.Fatal(err)
	}
	labeler, err := scheme.LabelRun(r)
	if err != nil {
		t.Fatal(err)
	}
	vl, err := scheme.LabelView(view.Default(spec), VariantDefault)
	if err != nil {
		t.Fatal(err)
	}
	idx := BuildItemIndex(0, labeler.Count(), labeler.Label)
	s := NewQuerySession()
	defer s.Close()
	pc := s.EnsurePlan(idx)
	for x := 1; x <= idx.Items(); x++ {
		if _, err := s.DepsRow(vl, idx, x); err != nil {
			t.Fatalf("depsRow(%d): %v", x, err)
		}
	}
	prods := len(pc.prods)
	if prods == 0 {
		t.Fatal("scanning every item cached no chain products")
	}
	for x := 1; x <= idx.Items(); x++ {
		if _, err := s.DepsRow(vl, idx, x); err != nil {
			t.Fatalf("second depsRow(%d): %v", x, err)
		}
	}
	if len(pc.prods) != prods {
		t.Fatalf("second scan grew the product cache from %d to %d entries", prods, len(pc.prods))
	}
	// The visibility row is computed once per label and shared afterwards.
	row := s.VisibleRow(vl, idx)
	if s.VisibleRow(vl, idx) != row {
		t.Fatal("visibleRow must return the cached row on the second call")
	}
}
