package core_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/workloads"
)

// randomLabel generates a structurally plausible data label for the paper
// example's scheme: edge fields stay within the ranges the codec's fixed
// widths were derived from, child positions and path lengths vary freely.
func randomLabel(rng *rand.Rand, scheme *core.Scheme) *core.DataLabel {
	prods := len(scheme.Spec.Grammar.Productions)
	cycles := len(scheme.Cycles)
	randPath := func(n int) []core.EdgeLabel {
		path := make([]core.EdgeLabel, n)
		for i := range path {
			if cycles > 0 && rng.Intn(3) == 0 {
				s := 1 + rng.Intn(cycles)
				t := 1 + rng.Intn(scheme.Cycles[s-1].Len())
				path[i] = core.RecursiveEdge(s, t, 1+rng.Intn(500))
			} else {
				path[i] = core.NonRecursiveEdge(1+rng.Intn(prods), 1+rng.Intn(400))
			}
		}
		return path
	}
	randPort := func(path []core.EdgeLabel) *core.PortLabel {
		return &core.PortLabel{Path: path, Port: rng.Intn(2)}
	}
	switch rng.Intn(4) {
	case 0: // initial input
		return &core.DataLabel{In: randPort(randPath(rng.Intn(3)))}
	case 1: // final output
		return &core.DataLabel{Out: randPort(randPath(rng.Intn(3)))}
	default: // intermediate item with a shared prefix
		shared := randPath(rng.Intn(5))
		out := append(append([]core.EdgeLabel(nil), shared...), randPath(rng.Intn(3))...)
		in := append(append([]core.EdgeLabel(nil), shared...), randPath(rng.Intn(3))...)
		return &core.DataLabel{Out: randPort(out), In: randPort(in)}
	}
}

func TestCodecRoundTripQuick(t *testing.T) {
	spec := workloads.PaperExample()
	scheme, err := core.NewScheme(spec)
	if err != nil {
		t.Fatal(err)
	}
	codec := scheme.Codec()
	rng := rand.New(rand.NewSource(99))

	roundTrips := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		_ = rng
		label := randomLabel(local, scheme)
		buf, nbits := codec.Encode(label)
		decoded, err := codec.Decode(buf, nbits)
		if err != nil {
			t.Logf("decode error for %v: %v", label, err)
			return false
		}
		return reflect.DeepEqual(normalize(label), normalize(decoded))
	}
	if err := quick.Check(roundTrips, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// normalize maps nil and empty paths to a canonical form so DeepEqual
// compares label structure, not slice identity.
func normalize(d *core.DataLabel) [2][]string {
	var out [2][]string
	render := func(p *core.PortLabel) []string {
		if p == nil {
			return nil
		}
		parts := make([]string, 0, len(p.Path)+1)
		for _, e := range p.Path {
			parts = append(parts, e.String())
		}
		return append(parts, string(rune('0'+p.Port)))
	}
	out[0] = render(d.Out)
	out[1] = render(d.In)
	return out
}

func TestCodecRoundTripOnRealRunLabels(t *testing.T) {
	spec := workloads.PaperExample()
	scheme, err := core.NewScheme(spec)
	if err != nil {
		t.Fatal(err)
	}
	codec := scheme.Codec()
	r, err := workloads.RandomRun(spec, workloads.RunOptions{TargetSize: 300, Rand: rand.New(rand.NewSource(123))})
	if err != nil {
		t.Fatal(err)
	}
	labeler, err := scheme.LabelRun(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, item := range r.Items {
		label, _ := labeler.Label(item.ID)
		buf, nbits := codec.Encode(label)
		decoded, err := codec.Decode(buf, nbits)
		if err != nil {
			t.Fatalf("item %d: decode: %v", item.ID, err)
		}
		if !reflect.DeepEqual(normalize(label), normalize(decoded)) {
			t.Fatalf("item %d: round trip changed the label: %v -> %v", item.ID, label, decoded)
		}
		if nbits <= 0 || nbits > 8*len(buf) {
			t.Fatalf("item %d: inconsistent bit count %d for %d bytes", item.ID, nbits, len(buf))
		}
	}
}

func TestCodecDecodeRejectsTruncatedInput(t *testing.T) {
	spec := workloads.PaperExample()
	scheme, err := core.NewScheme(spec)
	if err != nil {
		t.Fatal(err)
	}
	codec := scheme.Codec()
	label := &core.DataLabel{
		Out: &core.PortLabel{Path: []core.EdgeLabel{core.NonRecursiveEdge(1, 3), core.RecursiveEdge(1, 1, 5)}, Port: 1},
		In:  &core.PortLabel{Path: []core.EdgeLabel{core.NonRecursiveEdge(1, 3), core.NonRecursiveEdge(5, 2)}, Port: 0},
	}
	buf, nbits := codec.Encode(label)
	for cut := 1; cut < nbits; cut += 7 {
		if _, err := codec.Decode(buf, nbits-cut); err == nil {
			// Truncation may still yield a structurally valid shorter label in
			// rare alignments, but it must never panic; reaching here is fine.
			continue
		}
	}
}

// TestCodecDecodeRejectsOutOfRangeFields exploits the slack of the fixed
// field widths: bitsFor rounds up to whole bits, so the wire format can
// represent production indices, cycle indices, offsets and ports past the
// real maxima of the specification. Decode must reject every such value.
func TestCodecDecodeRejectsOutOfRangeFields(t *testing.T) {
	spec := workloads.PaperExample() // 8 productions (kBits 4), 2 cycles (sBits 2), max cycle len 2 (tBits 2), max port 2 (portBits 2)
	scheme, err := core.NewScheme(spec)
	if err != nil {
		t.Fatal(err)
	}
	codec := scheme.Codec()

	encode := func(d *core.DataLabel) ([]byte, int) {
		buf, nbits := codec.Encode(d)
		return buf, nbits
	}
	mustReject := func(name string, buf []byte, nbits int) {
		t.Helper()
		if _, err := codec.Decode(buf, nbits); err == nil {
			t.Errorf("%s: Decode accepted an out-of-range field", name)
		}
	}

	// Port 3 is representable in 2 bits but the largest module has 2 ports.
	// Encode writes it happily (it only measures lengths); Decode must not.
	buf, nbits := encode(&core.DataLabel{In: &core.PortLabel{Port: 3}})
	mustReject("port past the module maximum", buf, nbits)

	// Production index 0 and 9..15 are representable in 4 bits; only 1..8 exist.
	for _, k := range []int{0, 9, 15} {
		buf, nbits := encode(&core.DataLabel{In: &core.PortLabel{Path: []core.EdgeLabel{core.NonRecursiveEdge(k, 1)}, Port: 0}})
		mustReject(fmt.Sprintf("production index %d", k), buf, nbits)
	}

	// Cycle index 0 and 3 are representable in 2 bits; only cycles 1 and 2 exist.
	for _, s := range []int{0, 3} {
		buf, nbits := encode(&core.DataLabel{In: &core.PortLabel{Path: []core.EdgeLabel{core.RecursiveEdge(s, 1, 1)}, Port: 0}})
		mustReject(fmt.Sprintf("cycle index %d", s), buf, nbits)
	}

	// Cycle offset 0 and 3 are representable in 2 bits; offsets are 1-based
	// and the longest cycle has 2 edges.
	for _, offset := range []int{0, 3} {
		buf, nbits := encode(&core.DataLabel{In: &core.PortLabel{Path: []core.EdgeLabel{core.RecursiveEdge(1, offset, 1)}, Port: 0}})
		mustReject(fmt.Sprintf("cycle offset %d", offset), buf, nbits)
	}
}

func TestCodecDecodeRejectsTrailingBits(t *testing.T) {
	spec := workloads.PaperExample()
	scheme, err := core.NewScheme(spec)
	if err != nil {
		t.Fatal(err)
	}
	codec := scheme.Codec()
	label := &core.DataLabel{In: &core.PortLabel{Path: []core.EdgeLabel{core.NonRecursiveEdge(1, 3)}, Port: 1}}
	buf, nbits := codec.Encode(label)
	if _, err := codec.Decode(buf, nbits); err != nil {
		t.Fatalf("the canonical encoding must decode: %v", err)
	}
	// Declaring extra bits beyond the complete label must be rejected, so a
	// (buf, nbit) pair decodes to at most the one label Encode produced.
	padded := append(append([]byte(nil), buf...), 0)
	for extra := 1; extra <= 8; extra++ {
		if _, err := codec.Decode(padded, nbits+extra); err == nil {
			t.Fatalf("Decode accepted %d unconsumed trailing bits", extra)
		}
	}
}

func TestCodecDecodeRejectsInconsistentBitCount(t *testing.T) {
	spec := workloads.PaperExample()
	scheme, err := core.NewScheme(spec)
	if err != nil {
		t.Fatal(err)
	}
	codec := scheme.Codec()
	// A bit count larger than the buffer previously indexed out of range.
	for _, tc := range []struct {
		buf  []byte
		nbit int
	}{
		{nil, 1},
		{[]byte{}, 8},
		{[]byte{0xFF}, 9},
		{[]byte{0xFF}, -1},
	} {
		if _, err := codec.Decode(tc.buf, tc.nbit); err == nil {
			t.Errorf("Decode(%v, %d) accepted an inconsistent bit count", tc.buf, tc.nbit)
		}
	}
}

// TestCodecReadPathRejectsHugeEdgeCount reproduces the unbounded-allocation
// bug: a path whose Elias-gamma length field claims ~2^L edges used to make
// Decode allocate the full slice before noticing the stream was exhausted.
func TestCodecReadPathRejectsHugeEdgeCount(t *testing.T) {
	spec := workloads.PaperExample()
	scheme, err := core.NewScheme(spec)
	if err != nil {
		t.Fatal(err)
	}
	codec := scheme.Codec()
	// Build a raw stream by hand: kind=1 (initial input), then a gamma code
	// claiming 2^40 path entries, then nothing. Gamma of v = 41 zero bits
	// followed by the 41 significant bits of v; v = count+1 = 2^40+1.
	bits := []uint{0, 1} // kind = 1
	for i := 0; i < 40; i++ {
		bits = append(bits, 0) // unary prefix
	}
	bits = append(bits, 1) // leading significant bit of v
	for i := 0; i < 39; i++ {
		bits = append(bits, 0)
	}
	bits = append(bits, 1) // v = 2^40 + 1
	buf := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b != 0 {
			buf[i/8] |= 1 << uint(7-i%8)
		}
	}
	if _, err := codec.Decode(buf, len(bits)); err == nil {
		t.Fatal("Decode accepted a path claiming 2^40 edges in a 50-bit stream")
	}
}

// TestCodecDecodeRejectsNonCanonicalForms pins the canonicality guarantee:
// a buffer longer than the label needs, nonzero padding bits, or a kind-3
// label whose suffixes share their first edge (i.e. a non-maximal shared
// prefix) are all representable on the wire but never produced by Encode,
// and must be rejected so Decode accepts exactly Encode's image.
func TestCodecDecodeRejectsNonCanonicalForms(t *testing.T) {
	spec := workloads.PaperExample()
	scheme, err := core.NewScheme(spec)
	if err != nil {
		t.Fatal(err)
	}
	codec := scheme.Codec()

	label := &core.DataLabel{In: &core.PortLabel{Path: []core.EdgeLabel{core.NonRecursiveEdge(1, 3)}, Port: 1}}
	buf, nbits := codec.Encode(label)
	if _, err := codec.Decode(append(append([]byte(nil), buf...), 0), nbits); err == nil {
		t.Error("Decode accepted a buffer with a spare byte beyond the label")
	}
	padded := append([]byte(nil), buf...)
	padded[len(padded)-1] |= 1 // a padding bit below the declared bit count
	if 8*len(buf)-nbits > 0 {
		if _, err := codec.Decode(padded, nbits); err == nil {
			t.Error("Decode accepted nonzero padding bits")
		}
	}

	// A kind-3 label whose out- and in-suffixes start with the same edge can
	// only be written with a non-maximal shared prefix. Build the stream by
	// hand: Encode would factor the common edge out.
	e := core.NonRecursiveEdge(1, 1)
	shared := &core.DataLabel{
		Out: &core.PortLabel{Path: []core.EdgeLabel{e}, Port: 0},
		In:  &core.PortLabel{Path: []core.EdgeLabel{e}, Port: 0},
	}
	cBuf, cBits := codec.Encode(shared)
	if _, err := codec.Decode(cBuf, cBits); err != nil {
		t.Fatalf("the canonical encoding must decode: %v", err)
	}
	raw := rawNonCanonicalSharedPrefix(t)
	if _, err := codec.Decode(raw.buf, raw.nbit); err == nil {
		t.Error("Decode accepted a kind-3 stream with a non-maximal shared prefix")
	}
}

// rawNonCanonicalSharedPrefix hand-assembles the paper-example stream for
// the label ({(1,1),0}, {(1,1),0}) written with an EMPTY shared prefix:
// kind=3, shared path of length 0, then two identical one-edge suffixes.
func rawNonCanonicalSharedPrefix(t *testing.T) struct {
	buf  []byte
	nbit int
} {
	t.Helper()
	var bits []uint
	push := func(v uint64, width int) {
		for i := width - 1; i >= 0; i-- {
			bits = append(bits, uint(v>>uint(i))&1)
		}
	}
	gamma := func(v uint64) {
		n := 0
		for tmp := v; tmp > 1; tmp >>= 1 {
			n++
		}
		for i := 0; i < n; i++ {
			bits = append(bits, 0)
		}
		push(v, n+1)
	}
	suffix := func() {
		gamma(2)               // path length 1 (+1 encoding)
		bits = append(bits, 0) // non-recursive edge
		push(1, 4)             // k = 1 (kBits = 4 for the paper example)
		gamma(1)               // i = 1
	}
	push(3, 2) // kind 3: intermediate
	gamma(1)   // shared path: empty
	suffix()   // out suffix: (1,1)
	push(0, 2) // out port 0 (portBits = 2)
	suffix()   // in suffix: (1,1)
	push(0, 2) // in port 0
	buf := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b != 0 {
			buf[i/8] |= 1 << uint(7-i%8)
		}
	}
	return struct {
		buf  []byte
		nbit int
	}{buf, len(bits)}
}

// FuzzCodecDecode feeds arbitrary bytes to Decode: it must return an error
// or a label, never panic — and since Decode accepts exactly Encode's
// image, an accepted label must re-encode to the identical bit stream.
func FuzzCodecDecode(f *testing.F) {
	spec := workloads.PaperExample()
	scheme, err := core.NewScheme(spec)
	if err != nil {
		f.Fatal(err)
	}
	codec := scheme.Codec()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 8; i++ {
		buf, nbits := codec.Encode(randomLabel(rng, scheme))
		f.Add(buf, nbits)
	}
	f.Add([]byte{0xFF, 0xFF}, 16)
	f.Add([]byte{}, 0)
	f.Fuzz(func(t *testing.T, buf []byte, nbit int) {
		d, err := codec.Decode(buf, nbit)
		if err != nil {
			return
		}
		buf2, nbit2 := codec.Encode(d)
		if nbit2 != nbit || !bytes.Equal(buf2, buf) {
			t.Fatalf("accepted stream (%x, %d bits) is not the canonical encoding (%x, %d bits) of %v", buf, nbit, buf2, nbit2, d)
		}
		d2, err := codec.Decode(buf2, nbit2)
		if err != nil {
			t.Fatalf("re-encoding an accepted label failed to decode: %v", err)
		}
		if !reflect.DeepEqual(normalize(d), normalize(d2)) {
			t.Fatalf("re-encode round trip changed the label: %v -> %v", d, d2)
		}
	})
}

func TestEdgeAndPortLabelStrings(t *testing.T) {
	e1 := core.NonRecursiveEdge(1, 5)
	if e1.String() != "(1,5)" {
		t.Fatalf("edge string = %q", e1.String())
	}
	e2 := core.RecursiveEdge(1, 1, 5)
	if e2.String() != "(1,1,5)" {
		t.Fatalf("recursive edge string = %q", e2.String())
	}
	p := &core.PortLabel{Path: []core.EdgeLabel{e1, e2}, Port: 1}
	if p.String() != "{(1,5),(1,1,5),1}" {
		t.Fatalf("port label string = %q", p.String())
	}
	d := &core.DataLabel{Out: p}
	if !d.IsFinalOutput() || d.IsInitialInput() {
		t.Fatalf("label with only an output port must be a final output")
	}
}
