package core_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/workloads"
)

// randomLabel generates a structurally plausible data label for the paper
// example's scheme: edge fields stay within the ranges the codec's fixed
// widths were derived from, child positions and path lengths vary freely.
func randomLabel(rng *rand.Rand, scheme *core.Scheme) *core.DataLabel {
	prods := len(scheme.Spec.Grammar.Productions)
	cycles := len(scheme.Cycles)
	randPath := func(n int) []core.EdgeLabel {
		path := make([]core.EdgeLabel, n)
		for i := range path {
			if cycles > 0 && rng.Intn(3) == 0 {
				s := 1 + rng.Intn(cycles)
				t := 1 + rng.Intn(scheme.Cycles[s-1].Len())
				path[i] = core.RecursiveEdge(s, t, 1+rng.Intn(500))
			} else {
				path[i] = core.NonRecursiveEdge(1+rng.Intn(prods), 1+rng.Intn(400))
			}
		}
		return path
	}
	randPort := func(path []core.EdgeLabel) *core.PortLabel {
		return &core.PortLabel{Path: path, Port: rng.Intn(2)}
	}
	switch rng.Intn(4) {
	case 0: // initial input
		return &core.DataLabel{In: randPort(randPath(rng.Intn(3)))}
	case 1: // final output
		return &core.DataLabel{Out: randPort(randPath(rng.Intn(3)))}
	default: // intermediate item with a shared prefix
		shared := randPath(rng.Intn(5))
		out := append(append([]core.EdgeLabel(nil), shared...), randPath(rng.Intn(3))...)
		in := append(append([]core.EdgeLabel(nil), shared...), randPath(rng.Intn(3))...)
		return &core.DataLabel{Out: randPort(out), In: randPort(in)}
	}
}

func TestCodecRoundTripQuick(t *testing.T) {
	spec := workloads.PaperExample()
	scheme, err := core.NewScheme(spec)
	if err != nil {
		t.Fatal(err)
	}
	codec := scheme.Codec()
	rng := rand.New(rand.NewSource(99))

	roundTrips := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		_ = rng
		label := randomLabel(local, scheme)
		buf, nbits := codec.Encode(label)
		decoded, err := codec.Decode(buf, nbits)
		if err != nil {
			t.Logf("decode error for %v: %v", label, err)
			return false
		}
		return reflect.DeepEqual(normalize(label), normalize(decoded))
	}
	if err := quick.Check(roundTrips, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// normalize maps nil and empty paths to a canonical form so DeepEqual
// compares label structure, not slice identity.
func normalize(d *core.DataLabel) [2][]string {
	var out [2][]string
	render := func(p *core.PortLabel) []string {
		if p == nil {
			return nil
		}
		parts := make([]string, 0, len(p.Path)+1)
		for _, e := range p.Path {
			parts = append(parts, e.String())
		}
		return append(parts, string(rune('0'+p.Port)))
	}
	out[0] = render(d.Out)
	out[1] = render(d.In)
	return out
}

func TestCodecRoundTripOnRealRunLabels(t *testing.T) {
	spec := workloads.PaperExample()
	scheme, err := core.NewScheme(spec)
	if err != nil {
		t.Fatal(err)
	}
	codec := scheme.Codec()
	r, err := workloads.RandomRun(spec, workloads.RunOptions{TargetSize: 300, Rand: rand.New(rand.NewSource(123))})
	if err != nil {
		t.Fatal(err)
	}
	labeler, err := scheme.LabelRun(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, item := range r.Items {
		label, _ := labeler.Label(item.ID)
		buf, nbits := codec.Encode(label)
		decoded, err := codec.Decode(buf, nbits)
		if err != nil {
			t.Fatalf("item %d: decode: %v", item.ID, err)
		}
		if !reflect.DeepEqual(normalize(label), normalize(decoded)) {
			t.Fatalf("item %d: round trip changed the label: %v -> %v", item.ID, label, decoded)
		}
		if nbits <= 0 || nbits > 8*len(buf) {
			t.Fatalf("item %d: inconsistent bit count %d for %d bytes", item.ID, nbits, len(buf))
		}
	}
}

func TestCodecDecodeRejectsTruncatedInput(t *testing.T) {
	spec := workloads.PaperExample()
	scheme, err := core.NewScheme(spec)
	if err != nil {
		t.Fatal(err)
	}
	codec := scheme.Codec()
	label := &core.DataLabel{
		Out: &core.PortLabel{Path: []core.EdgeLabel{core.NonRecursiveEdge(1, 3), core.RecursiveEdge(1, 1, 5)}, Port: 1},
		In:  &core.PortLabel{Path: []core.EdgeLabel{core.NonRecursiveEdge(1, 3), core.NonRecursiveEdge(5, 2)}, Port: 0},
	}
	buf, nbits := codec.Encode(label)
	for cut := 1; cut < nbits; cut += 7 {
		if _, err := codec.Decode(buf, nbits-cut); err == nil {
			// Truncation may still yield a structurally valid shorter label in
			// rare alignments, but it must never panic; reaching here is fine.
			continue
		}
	}
}

func TestEdgeAndPortLabelStrings(t *testing.T) {
	e1 := core.NonRecursiveEdge(1, 5)
	if e1.String() != "(1,5)" {
		t.Fatalf("edge string = %q", e1.String())
	}
	e2 := core.RecursiveEdge(1, 1, 5)
	if e2.String() != "(1,1,5)" {
		t.Fatalf("recursive edge string = %q", e2.String())
	}
	p := &core.PortLabel{Path: []core.EdgeLabel{e1, e2}, Port: 1}
	if p.String() != "{(1,5),(1,1,5),1}" {
		t.Fatalf("port label string = %q", p.String())
	}
	d := &core.DataLabel{Out: p}
	if !d.IsFinalOutput() || d.IsInitialInput() {
		t.Fatalf("label with only an output port must be a final output")
	}
}
