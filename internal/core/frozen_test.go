package core_test

import (
	"strings"
	"testing"

	"repro/internal/boolmat"
	"repro/internal/core"
	"repro/internal/view"
	"repro/internal/workloads"
)

// frozenFixture builds a query-efficient label over the paper example's
// default view and freezes it, giving the tamper tests below a fully
// populated frozen state (materialized matrices and recursion caches).
func frozenFixture(t *testing.T) (*core.Scheme, *view.View, *core.FrozenLabel) {
	t.Helper()
	spec := workloads.PaperExample()
	scheme, err := core.NewScheme(spec)
	if err != nil {
		t.Fatal(err)
	}
	v := view.Default(spec)
	vl, err := scheme.LabelView(v, core.VariantQueryEfficient)
	if err != nil {
		t.Fatal(err)
	}
	return scheme, v, vl.Freeze()
}

// copyFrozen clones the map structure (not the matrices) so each tamper test
// mutates its own frozen label.
func copyFrozen(f *core.FrozenLabel) *core.FrozenLabel {
	c := *f
	c.IMat = map[[2]int]*boolmat.Matrix{}
	for k, m := range f.IMat {
		c.IMat[k] = m
	}
	c.OMat = map[[2]int]*boolmat.Matrix{}
	for k, m := range f.OMat {
		c.OMat[k] = m
	}
	c.ZMat = map[[3]int]*boolmat.Matrix{}
	for k, m := range f.ZMat {
		c.ZMat[k] = m
	}
	c.InRec = map[[2]int]*core.FrozenChain{}
	for k, fc := range f.InRec {
		cc := *fc
		c.InRec[k] = &cc
	}
	c.OutRec = map[[2]int]*core.FrozenChain{}
	for k, fc := range f.OutRec {
		cc := *fc
		c.OutRec[k] = &cc
	}
	c.Full = f.Full.Clone()
	return &c
}

func TestRestoreViewRoundTrip(t *testing.T) {
	scheme, v, f := frozenFixture(t)
	vl, err := scheme.RestoreView(v, f)
	if err != nil {
		t.Fatalf("RestoreView on an untampered frozen label: %v", err)
	}
	if vl.Variant() != core.VariantQueryEfficient {
		t.Fatalf("restored variant %v", vl.Variant())
	}
}

func TestRestoreViewRejectsStructuralDamage(t *testing.T) {
	scheme, v, f := frozenFixture(t)

	someKI := func(m map[[2]int]*boolmat.Matrix) [2]int {
		for k := range m {
			return k
		}
		t.Fatal("empty map")
		return [2]int{}
	}
	someKIJ := func(m map[[3]int]*boolmat.Matrix) [3]int {
		for k := range m {
			return k
		}
		t.Fatal("empty map")
		return [3]int{}
	}
	someChain := func(m map[[2]int]*core.FrozenChain) [2]int {
		for k := range m {
			return k
		}
		t.Fatal("empty map")
		return [2]int{}
	}

	cases := map[string]func(f *core.FrozenLabel){
		"unknown variant":  func(f *core.FrozenLabel) { f.Variant = core.Variant(42) },
		"nil start matrix": func(f *core.FrozenLabel) { f.Start = nil },
		"start matrix dimension clash": func(f *core.FrozenLabel) {
			f.Start = boolmat.Full(7, 7)
		},
		"full assignment for undeclared module": func(f *core.FrozenLabel) {
			f.Full["ghost"] = boolmat.Full(2, 2)
		},
		"full assignment dimension clash": func(f *core.FrozenLabel) {
			f.Full["S"] = boolmat.Full(1, 9)
		},
		"full assignment missing a reachable module": func(f *core.FrozenLabel) {
			delete(f.Full, "S")
		},
		"full assignment gutted": func(f *core.FrozenLabel) {
			f.Full = nil
		},
		"I matrix for out-of-range production": func(f *core.FrozenLabel) {
			f.IMat[[2]int{99, 1}] = boolmat.Full(2, 2)
		},
		"I matrix for out-of-range node": func(f *core.FrozenLabel) {
			f.IMat[[2]int{1, 42}] = boolmat.Full(2, 2)
		},
		"I matrix dimension clash": func(f *core.FrozenLabel) {
			f.IMat[someKI(f.IMat)] = boolmat.Full(33, 33)
		},
		"O matrix dimension clash": func(f *core.FrozenLabel) {
			f.OMat[someKI(f.OMat)] = boolmat.Full(33, 33)
		},
		"Z matrix with i >= j": func(f *core.FrozenLabel) {
			f.ZMat[[3]int{1, 3, 2}] = boolmat.Full(2, 2)
		},
		"Z matrix dimension clash": func(f *core.FrozenLabel) {
			f.ZMat[someKIJ(f.ZMat)] = boolmat.Full(33, 33)
		},
		"recursion cache for unknown cycle": func(f *core.FrozenLabel) {
			f.InRec[[2]int{9, 1}] = f.InRec[someChain(f.InRec)]
		},
		"recursion cache offset out of range": func(f *core.FrozenLabel) {
			f.InRec[[2]int{1, 99}] = f.InRec[someChain(f.InRec)]
		},
		"recursion cache with wrong prefix count": func(f *core.FrozenLabel) {
			k := someChain(f.OutRec)
			f.OutRec[k].Prefixes = f.OutRec[k].Prefixes[:1]
		},
		"recursion cache with zero period": func(f *core.FrozenLabel) {
			f.InRec[someChain(f.InRec)].Period = 0
		},
		"recursion cache with incomplete power table": func(f *core.FrozenLabel) {
			k := someChain(f.InRec)
			f.InRec[k].Preperiod = 5
			f.InRec[k].Period = 5
		},
		"missing materialized matrices": func(f *core.FrozenLabel) {
			f.IMat = nil
		},
		"missing recursion caches": func(f *core.FrozenLabel) {
			f.InRec, f.OutRec = nil, nil
		},
	}
	for name, tamper := range cases {
		bad := copyFrozen(f)
		tamper(bad)
		if _, err := scheme.RestoreView(v, bad); err == nil {
			t.Errorf("%s: RestoreView accepted the damaged state", name)
		}
	}
}

func TestRestoreViewRejectsVariantMismatch(t *testing.T) {
	scheme, v, f := frozenFixture(t)

	// A space-efficient label must not smuggle in materialized state.
	bad := copyFrozen(f)
	bad.Variant = core.VariantSpaceEfficient
	if _, err := scheme.RestoreView(v, bad); err == nil {
		t.Error("space-efficient frozen label with materialized matrices accepted")
	}

	// A default-variant label must not carry recursion caches.
	bad = copyFrozen(f)
	bad.Variant = core.VariantDefault
	if _, err := scheme.RestoreView(v, bad); err == nil {
		t.Error("default-variant frozen label with recursion caches accepted")
	}
}

func TestRestoreViewRejectsForeignView(t *testing.T) {
	scheme, _, f := frozenFixture(t)
	other := view.Default(workloads.PaperExample())
	_, err := scheme.RestoreView(other, f)
	if err == nil || !strings.Contains(err.Error(), "different specification") {
		t.Fatalf("RestoreView accepted a view over a different specification (err=%v)", err)
	}
}

// TestRestoreViewRejectsExcludedCycleCache pins the stricter-than-LabelView
// rule: a recursion cache keyed to a cycle the view does not fully include
// can only come from a tampered snapshot.
func TestRestoreViewRejectsExcludedCycleCache(t *testing.T) {
	spec := workloads.PaperExample()
	scheme, err := core.NewScheme(spec)
	if err != nil {
		t.Fatal(err)
	}
	// The security view keeps S, A, B expandable: cycle C(2) = {(6,2)} (the
	// D -> D recursion, inside C's productions) is excluded.
	sec, err := workloads.PaperSecurityView(spec)
	if err != nil {
		t.Fatal(err)
	}
	vl, err := scheme.LabelView(sec, core.VariantQueryEfficient)
	if err != nil {
		t.Fatal(err)
	}
	f := vl.Freeze()
	def, err := scheme.LabelView(view.Default(spec), core.VariantQueryEfficient)
	if err != nil {
		t.Fatal(err)
	}
	donor := def.Freeze()
	bad := copyFrozen(f)
	grafted := false
	for key, fc := range donor.InRec {
		if _, ok := f.InRec[key]; !ok {
			bad.InRec[key] = fc
			grafted = true
			break
		}
	}
	if !grafted {
		t.Skip("security view caches every cycle; nothing to graft")
	}
	if _, err := scheme.RestoreView(sec, bad); err == nil {
		t.Fatal("RestoreView accepted a recursion cache for an excluded cycle")
	}
}
