package core

import (
	"fmt"

	"repro/internal/boolmat"
	"repro/internal/view"
	"repro/internal/workflow"
)

// FrozenChain is the serializable form of one recursion cache: the prefix
// products along a cycle and the eventually-periodic powers of the full-turn
// product (Section 4.4.3).
type FrozenChain struct {
	Prefixes  []*boolmat.Matrix
	Preperiod int
	Period    int
	Powers    []*boolmat.Matrix
}

// FrozenLabel is the construction-time state of a ViewLabel in a
// serializable form: everything LabelView computes, nothing it derives
// cheaply from the view itself. Freeze produces one; Scheme.RestoreView
// validates one and turns it back into a servable label. The matrices are
// shared with the label that produced them (view labels are read-only after
// construction), so a FrozenLabel must not be mutated.
type FrozenLabel struct {
	Variant Variant

	// Start is λ*(S), the induced dependency matrix of the start module.
	Start *boolmat.Matrix
	// Full is the full dependency assignment λ*′ of the view.
	Full workflow.DependencyAssignment

	// Materialized reachability functions (VariantDefault and
	// VariantQueryEfficient; nil for VariantSpaceEfficient).
	IMat map[[2]int]*boolmat.Matrix
	OMat map[[2]int]*boolmat.Matrix
	ZMat map[[3]int]*boolmat.Matrix

	// Recursion caches (VariantQueryEfficient only), keyed by (cycle index,
	// starting offset).
	InRec  map[[2]int]*FrozenChain
	OutRec map[[2]int]*FrozenChain
}

// Freeze exports the label's frozen state for persistence. The returned
// structure shares the label's matrices and must be treated as read-only.
func (vl *ViewLabel) Freeze() *FrozenLabel {
	f := &FrozenLabel{
		Variant: vl.variant,
		Start:   vl.start,
		Full:    vl.full,
		IMat:    vl.iMat,
		OMat:    vl.oMat,
		ZMat:    vl.zMat,
	}
	freezeChains := func(src map[[2]int]*recChain) map[[2]int]*FrozenChain {
		if src == nil {
			return nil
		}
		out := make(map[[2]int]*FrozenChain, len(src))
		for key, rc := range src {
			out[key] = &FrozenChain{
				Prefixes:  rc.prefixes,
				Preperiod: rc.period.Preperiod,
				Period:    rc.period.Period,
				Powers:    rc.period.Powers,
			}
		}
		return out
	}
	f.InRec = freezeChains(vl.inRec)
	f.OutRec = freezeChains(vl.outRec)
	return f
}

// RestoreView rebuilds a ViewLabel from its frozen state without relabeling
// the view. The frozen state is untrusted input (it typically arrives from
// disk): every matrix dimension is checked against the scheme's
// specification and every production, node and cycle index against its real
// range, so a snapshot that passes RestoreView can be served without the
// decode path ever indexing out of bounds. Structural damage yields an
// error, never a panic.
//
//fvlvet:viewlabel-ctor
func (s *Scheme) RestoreView(v *view.View, f *FrozenLabel) (*ViewLabel, error) {
	if v == nil || f == nil {
		return nil, fmt.Errorf("core: RestoreView requires a view and a frozen label")
	}
	if v.Spec != s.Spec {
		return nil, fmt.Errorf("core: view %q is defined over a different specification", v.Name)
	}
	switch f.Variant {
	case VariantSpaceEfficient, VariantDefault, VariantQueryEfficient:
	default:
		return nil, fmt.Errorf("core: frozen label for view %q has unknown variant %d", v.Name, int(f.Variant))
	}

	g := s.Spec.Grammar
	vl := &ViewLabel{
		scheme:   s,
		view:     v,
		variant:  f.Variant,
		included: map[int]bool{},
	}
	for k := 1; k <= len(g.Productions); k++ {
		if v.IncludesProduction(k) {
			vl.included[k] = true
		}
	}

	// λ*(S): the matrix the start-module cases of Algorithm 2 index directly.
	start, ok := g.Modules[g.Start]
	if !ok {
		return nil, fmt.Errorf("core: specification has no start module %q", g.Start)
	}
	if err := checkMatrixDims("λ*(S)", v, f.Start, start.In, start.Out); err != nil {
		return nil, err
	}
	vl.start = f.Start

	// λ*′: every matrix must belong to a declared module with port-count
	// dimensions (the space-efficient graph-search path feeds these straight
	// into closures), and every module reachable in the view must be covered
	// (Lemma 1 guarantees the genuine assignment is total over them) — a
	// gutted assignment would otherwise pass load-time validation and fail
	// on every query instead.
	for name, m := range f.Full {
		mod, ok := g.Modules[name]
		if !ok {
			return nil, fmt.Errorf("core: frozen label for view %q assigns dependencies to undeclared module %q", v.Name, name)
		}
		if err := checkMatrixDims(fmt.Sprintf("λ*′(%s)", name), v, m, mod.In, mod.Out); err != nil {
			return nil, err
		}
	}
	for name := range v.ReachableModules() {
		if _, ok := f.Full[name]; !ok {
			return nil, fmt.Errorf("core: frozen label for view %q: λ*′ does not cover reachable module %q", v.Name, name)
		}
	}
	vl.full = f.Full

	hasMats := f.IMat != nil || f.OMat != nil || f.ZMat != nil
	hasRec := f.InRec != nil || f.OutRec != nil
	switch f.Variant {
	case VariantSpaceEfficient:
		if hasMats || hasRec {
			return nil, fmt.Errorf("core: space-efficient frozen label for view %q carries materialized state", v.Name)
		}
		return vl, nil
	case VariantDefault:
		if hasRec {
			return nil, fmt.Errorf("core: default-variant frozen label for view %q carries recursion caches", v.Name)
		}
	}
	if f.IMat == nil || f.OMat == nil || f.ZMat == nil {
		return nil, fmt.Errorf("core: %v frozen label for view %q lacks materialized matrices", f.Variant, v.Name)
	}

	// I, O and Z: keys must name an included production and an in-range node;
	// dimensions are fixed by the production's modules.
	for key, m := range f.IMat {
		lhs, node, err := s.productionModules(vl, v, key[0], key[1])
		if err != nil {
			return nil, err
		}
		if err := checkMatrixDims(fmt.Sprintf("I(%d,%d)", key[0], key[1]), v, m, lhs.In, node.In); err != nil {
			return nil, err
		}
	}
	for key, m := range f.OMat {
		lhs, node, err := s.productionModules(vl, v, key[0], key[1])
		if err != nil {
			return nil, err
		}
		if err := checkMatrixDims(fmt.Sprintf("O(%d,%d)", key[0], key[1]), v, m, lhs.Out, node.Out); err != nil {
			return nil, err
		}
	}
	for key, m := range f.ZMat {
		k, i, j := key[0], key[1], key[2]
		_, ni, err := s.productionModules(vl, v, k, i)
		if err != nil {
			return nil, err
		}
		_, nj, err := s.productionModules(vl, v, k, j)
		if err != nil {
			return nil, err
		}
		if i >= j {
			return nil, fmt.Errorf("core: frozen label for view %q stores Z(%d,%d,%d) with i >= j", v.Name, k, i, j)
		}
		if err := checkMatrixDims(fmt.Sprintf("Z(%d,%d,%d)", k, i, j), v, m, ni.Out, nj.In); err != nil {
			return nil, err
		}
	}
	vl.iMat, vl.oMat, vl.zMat = f.IMat, f.OMat, f.ZMat

	if f.Variant == VariantDefault {
		return vl, nil
	}
	if f.InRec == nil || f.OutRec == nil {
		return nil, fmt.Errorf("core: query-efficient frozen label for view %q lacks recursion caches", v.Name)
	}
	vl.inRec = map[[2]int]*recChain{}
	vl.outRec = map[[2]int]*recChain{}
	for key, fc := range f.InRec {
		rc, err := s.restoreChain(vl, v, key, fc, false)
		if err != nil {
			return nil, err
		}
		vl.inRec[key] = rc
	}
	for key, fc := range f.OutRec {
		rc, err := s.restoreChain(vl, v, key, fc, true)
		if err != nil {
			return nil, err
		}
		vl.outRec[key] = rc
	}
	return vl, nil
}

// productionModules resolves the (k, i) key of a materialized matrix to the
// production's left-hand-side module and its i-th right-hand-side node,
// rejecting out-of-range or not-included keys.
func (s *Scheme) productionModules(vl *ViewLabel, v *view.View, k, i int) (lhs, node workflow.Module, err error) {
	g := s.Spec.Grammar
	if k < 1 || k > len(g.Productions) {
		return lhs, node, fmt.Errorf("core: frozen label for view %q references production %d of %d", v.Name, k, len(g.Productions))
	}
	if !vl.included[k] {
		return lhs, node, fmt.Errorf("core: frozen label for view %q materializes production %d, which the view excludes", v.Name, k)
	}
	p := g.Productions[k-1]
	if i < 1 || i > len(p.RHS.Nodes) {
		return lhs, node, fmt.Errorf("core: frozen label for view %q references node %d of production %d (%d nodes)", v.Name, i, k, len(p.RHS.Nodes))
	}
	return g.Modules[p.LHS], g.Modules[p.RHS.Nodes[i-1]], nil
}

// restoreChain validates one frozen recursion cache against the cycle it
// claims to belong to: the key must name a cycle of the scheme that survives
// in the view, the prefix products must cover exactly one full turn with the
// dimensions the cycle's modules dictate, and the periodic powers must form
// a complete table for PowerPeriod.Power's constant-time lookup.
func (s *Scheme) restoreChain(vl *ViewLabel, v *view.View, key [2]int, fc *FrozenChain, outputs bool) (*recChain, error) {
	kind := "in"
	if outputs {
		kind = "out"
	}
	fail := func(format string, args ...any) (*recChain, error) {
		return nil, fmt.Errorf("core: frozen label for view %q, %s-chain (%d,%d): %s", v.Name, kind, key[0], key[1], fmt.Sprintf(format, args...))
	}
	if fc == nil {
		return fail("nil chain")
	}
	c, err := s.Cycle(key[0])
	if err != nil {
		return fail("no cycle %d", key[0])
	}
	if key[1] < 1 || key[1] > c.Len() {
		return fail("offset out of range [1, %d]", c.Len())
	}
	if !vl.cycleIncluded(c) {
		return fail("cycle %d is not fully included in the view", key[0])
	}
	if len(fc.Prefixes) != c.Len()+1 {
		return fail("%d prefix products, want %d", len(fc.Prefixes), c.Len()+1)
	}
	dimAt := func(offset int) (int, error) {
		mod, err := s.moduleAtCycleOffset(key[0], offset)
		if err != nil {
			return 0, err
		}
		if outputs {
			return mod.Out, nil
		}
		return mod.In, nil
	}
	dim0, err := dimAt(key[1])
	if err != nil {
		return fail("%v", err)
	}
	for r, m := range fc.Prefixes {
		dimR, err := dimAt(key[1] + r)
		if err != nil {
			return fail("%v", err)
		}
		if err := checkMatrixDims(fmt.Sprintf("prefix %d", r), v, m, dim0, dimR); err != nil {
			return fail("%v", err)
		}
	}
	if fc.Preperiod < 1 || fc.Period < 1 {
		return fail("preperiod %d / period %d must both be >= 1", fc.Preperiod, fc.Period)
	}
	if len(fc.Powers) != fc.Preperiod+fc.Period-1 {
		return fail("%d cached powers, want preperiod+period-1 = %d", len(fc.Powers), fc.Preperiod+fc.Period-1)
	}
	for a, m := range fc.Powers {
		if err := checkMatrixDims(fmt.Sprintf("power %d", a+1), v, m, dim0, dim0); err != nil {
			return fail("%v", err)
		}
	}
	return &recChain{
		prefixes: fc.Prefixes,
		period:   &boolmat.PowerPeriod{Preperiod: fc.Preperiod, Period: fc.Period, Powers: fc.Powers},
	}, nil
}

func checkMatrixDims(what string, v *view.View, m *boolmat.Matrix, rows, cols int) error {
	if m == nil {
		return fmt.Errorf("core: frozen label for view %q: %s is nil", v.Name, what)
	}
	if m.Rows() != rows || m.Cols() != cols {
		return fmt.Errorf("core: frozen label for view %q: %s is %dx%d, want %dx%d", v.Name, what, m.Rows(), m.Cols(), rows, cols)
	}
	return nil
}
