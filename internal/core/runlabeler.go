package core

import (
	"context"
	"fmt"

	"repro/internal/faults"
	"repro/internal/run"
	"repro/internal/workflow"
)

// RunLabeler is φr: it observes a run derivation and assigns every data item
// its label as soon as the item is produced (Section 4.2.3). Labels are never
// modified after assignment. The labeler maintains, for every module instance
// of the run, the path of edge labels from the root of the compressed parse
// tree to the node representing the instance; port and data labels are formed
// from these paths.
type RunLabeler struct {
	scheme *Scheme

	// instPath[id] is the edge-label path of the tree node for instance id.
	instPath map[int][]EdgeLabel
	// labels[itemID] is the assigned data label.
	labels map[int]*DataLabel

	// pathsOnly marks a tracker built by NewPathTracker: it maintains the
	// parse-tree paths but assigns no labels. A shard coordinator runs one to
	// compute port-owner paths, while the label assignment itself happens
	// shard-side through LabelRemote.
	pathsOnly bool
}

// NewRunLabeler returns a labeler for runs of the scheme's specification.
// Attach it to a run with run.Run.AddObserver.
func (s *Scheme) NewRunLabeler() *RunLabeler {
	return &RunLabeler{
		scheme:   s,
		instPath: map[int][]EdgeLabel{},
		labels:   map[int]*DataLabel{},
	}
}

// Label returns the label assigned to the data item with the given ID.
func (l *RunLabeler) Label(itemID int) (*DataLabel, bool) {
	d, ok := l.labels[itemID]
	return d, ok
}

// Labels returns a snapshot of all assigned labels keyed by data item ID.
func (l *RunLabeler) Labels() map[int]*DataLabel {
	out := make(map[int]*DataLabel, len(l.labels))
	for k, v := range l.labels {
		out[k] = v.Clone()
	}
	return out
}

// Count returns the number of labeled data items.
func (l *RunLabeler) Count() int { return len(l.labels) }

// OnInit labels the initial inputs and final outputs of the run (the ports of
// the start module). If the start module is recursive, the root of the
// compressed parse tree is a recursive node and the start instance is its
// first child.
func (l *RunLabeler) OnInit(r *run.Run) error {
	if r.Spec != l.scheme.Spec {
		return fmt.Errorf("core: run was derived from a different specification: %w", faults.ErrForeignLabel)
	}
	start := l.scheme.Spec.Grammar.Start
	var path []EdgeLabel
	if s, t, ok := l.scheme.cycleOf(start); ok {
		path = []EdgeLabel{RecursiveEdge(s, t, 1)}
	}
	l.instPath[0] = path
	if l.pathsOnly {
		return nil
	}

	root, _ := r.Instance(0)
	for _, item := range r.Items {
		if item.Step != 0 {
			continue
		}
		if item.Src == -1 {
			port, _ := r.Port(item.Dst)
			l.labels[item.ID] = &DataLabel{In: l.portLabel(root.ID, port)}
		} else {
			port, _ := r.Port(item.Src)
			l.labels[item.ID] = &DataLabel{Out: l.portLabel(root.ID, port)}
		}
	}
	return nil
}

func (l *RunLabeler) portLabel(ownerInstance int, port run.PortInstance) *PortLabel {
	path := l.instPath[ownerInstance]
	return &PortLabel{Path: append([]EdgeLabel(nil), path...), Port: port.Index}
}

// OnStep places the instances created by the step into the compressed parse
// tree (cases 1, 2a and 2b of the dynamic labeling algorithm) and labels the
// data items the step introduced.
func (l *RunLabeler) OnStep(r *run.Run, step *run.Step) error {
	parent, ok := r.Instance(step.Instance)
	if !ok {
		return fmt.Errorf("core: step refers to unknown instance %d", step.Instance)
	}
	parentPath, ok := l.instPath[parent.ID]
	if !ok {
		return fmt.Errorf("core: instance %d was never placed in the parse tree", parent.ID)
	}
	k := step.Prod
	parentRecursive := l.scheme.isRecursive(parent.Module)

	for _, childID := range step.NewInstances {
		child, _ := r.Instance(childID)
		i := child.NodeIndex + 1 // 1-based position within the production RHS
		childRecursive := l.scheme.isRecursive(child.Module)
		var path []EdgeLabel
		switch {
		case !childRecursive:
			// Case 1: ordinary child of the parent's node.
			path = appendEdge(parentPath, NonRecursiveEdge(k, i))
		case parentRecursive && l.scheme.sameCycle(parent.Module, child.Module):
			// Case 2a: the child continues the parent's linear recursion; it
			// becomes the next sibling of the parent under the enclosing
			// recursive node.
			if len(parentPath) == 0 || !parentPath[len(parentPath)-1].Recursive {
				return fmt.Errorf("core: recursive instance %d has no enclosing recursive node", parent.ID)
			}
			last := parentPath[len(parentPath)-1]
			path = appendEdge(parentPath[:len(parentPath)-1], RecursiveEdge(last.S, last.T, last.I+1))
		default:
			// Case 2b: a new recursion starts below the parent: a fresh
			// recursive node is inserted with the child as its first element.
			s, t, ok := l.scheme.cycleOf(child.Module)
			if !ok {
				return fmt.Errorf("core: module %q is recursive but has no cycle", child.Module)
			}
			path = appendEdge(appendEdge(parentPath, NonRecursiveEdge(k, i)), RecursiveEdge(s, t, 1))
		}
		l.instPath[childID] = path
	}
	if l.pathsOnly {
		return nil
	}

	for _, itemID := range step.NewItems {
		item, _ := r.Item(itemID)
		src, _ := r.Port(item.Src)
		dst, _ := r.Port(item.Dst)
		l.labels[itemID] = &DataLabel{
			Out: l.portLabel(src.Owner, src),
			In:  l.portLabel(dst.Owner, dst),
		}
	}
	return nil
}

func appendEdge(path []EdgeLabel, e EdgeLabel) []EdgeLabel {
	out := make([]EdgeLabel, 0, len(path)+1)
	out = append(out, path...)
	return append(out, e)
}

// LabelRun is a convenience helper that labels an already-derived run by
// replaying its derivation (OnInit followed by every recorded step, in
// order). The labels produced are identical to those an online labeler
// attached before derivation would have produced.
func (s *Scheme) LabelRun(r *run.Run) (*RunLabeler, error) {
	return s.LabelRunContext(context.Background(), r)
}

// LabelRunContext is LabelRun with cancellation: the context is observed
// every 256 derivation steps, so canceling it aborts the replay with an
// error wrapping faults.ErrCanceled. This is the single replay
// implementation — every caller that replays a derivation goes through it,
// keeping the "OnInit, then every step in order" discipline in one place.
func (s *Scheme) LabelRunContext(ctx context.Context, r *run.Run) (*RunLabeler, error) {
	l := s.NewRunLabeler()
	if err := l.OnInit(r); err != nil {
		return nil, err
	}
	for i := range r.Steps {
		if i&0xff == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: run labeling canceled at step %d of %d: %w (%v)", i, len(r.Steps), faults.ErrCanceled, err)
			}
		}
		if err := l.OnStep(r, &r.Steps[i]); err != nil {
			return nil, err
		}
	}
	return l, nil
}

var _ run.Observer = (*RunLabeler)(nil)

// portKindOf is a small helper used in tests to sanity-check port labels.
func portKindOf(p run.PortInstance) workflow.PortKind { return p.Kind }
