package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/run"
	"repro/internal/view"
	"repro/internal/workloads"
)

// allVariants are the three view-labeling variants compared in Section 6.3.
var allVariants = []core.Variant{core.VariantSpaceEfficient, core.VariantDefault, core.VariantQueryEfficient}

// labeledRun derives a random run of the given size and labels it with FVL.
func labeledRun(t *testing.T, scheme *core.Scheme, seed int64, size int) (*run.Run, *core.RunLabeler) {
	t.Helper()
	r, err := workloads.RandomRun(scheme.Spec, workloads.RunOptions{TargetSize: size, Rand: rand.New(rand.NewSource(seed))})
	if err != nil {
		t.Fatalf("deriving run: %v", err)
	}
	labeler, err := scheme.LabelRun(r)
	if err != nil {
		t.Fatalf("labeling run: %v", err)
	}
	if labeler.Count() != r.Size() {
		t.Fatalf("labeled %d items, run has %d", labeler.Count(), r.Size())
	}
	return r, labeler
}

// checkAgainstOracle compares the decoding predicate against the ground-truth
// projection oracle for pairs of visible items. When pairs <= 0 every pair is
// checked; otherwise that many random pairs are checked.
func checkAgainstOracle(t *testing.T, vl *core.ViewLabel, labeler *core.RunLabeler, r *run.Run, v *view.View, pairs int, seed int64) {
	t.Helper()
	proj, err := run.Project(r, v)
	if err != nil {
		t.Fatalf("projecting run onto %q: %v", v.Name, err)
	}
	visible := proj.VisibleItems()
	if len(visible) == 0 {
		t.Fatalf("view %q has no visible items", v.Name)
	}
	check := func(d1, d2 int) {
		l1, ok := labeler.Label(d1)
		if !ok {
			t.Fatalf("no label for item %d", d1)
		}
		l2, ok := labeler.Label(d2)
		if !ok {
			t.Fatalf("no label for item %d", d2)
		}
		want, err := proj.DependsOn(d1, d2)
		if err != nil {
			t.Fatalf("oracle DependsOn(%d,%d): %v", d1, d2, err)
		}
		got, err := vl.DependsOn(l1, l2)
		if err != nil {
			t.Fatalf("decode DependsOn(%d,%d) over %q: %v\n d1=%v\n d2=%v", d1, d2, v.Name, err, l1, l2)
		}
		if got != want {
			t.Fatalf("DependsOn(%d,%d) over %q (%v) = %v, oracle says %v\n d1=%v\n d2=%v",
				d1, d2, v.Name, vl.Variant(), got, want, l1, l2)
		}
	}
	if pairs <= 0 {
		for _, d1 := range visible {
			for _, d2 := range visible {
				check(d1, d2)
			}
		}
		return
	}
	rng := rand.New(rand.NewSource(seed))
	for n := 0; n < pairs; n++ {
		check(visible[rng.Intn(len(visible))], visible[rng.Intn(len(visible))])
	}
}

func TestDecodeMatchesOracleOnPaperExample(t *testing.T) {
	spec := workloads.PaperExample()
	scheme, err := core.NewScheme(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, labeler := labeledRun(t, scheme, 1, 150)

	views := map[string]*view.View{"default": view.Default(spec)}
	if v, err := workloads.PaperSecurityView(spec); err == nil {
		views["security"] = v
	} else {
		t.Fatal(err)
	}
	if v, err := workloads.PaperAbstractionView(spec); err == nil {
		views["abstraction"] = v
	} else {
		t.Fatal(err)
	}

	for name, v := range views {
		for _, variant := range allVariants {
			vl, err := scheme.LabelView(v, variant)
			if err != nil {
				t.Fatalf("labeling view %q (%v): %v", name, variant, err)
			}
			pairs := 0 // exhaustive
			if variant == core.VariantSpaceEfficient {
				pairs = 1500 // the graph-search variant is slow by design
			}
			t.Run(fmt.Sprintf("%s/%v", name, variant), func(t *testing.T) {
				checkAgainstOracle(t, vl, labeler, r, v, pairs, 7)
			})
			t.Run(fmt.Sprintf("%s/%v/matrix-free", name, variant), func(t *testing.T) {
				checkAgainstOracle(t, vl.WithMatrixFree(), labeler, r, v, 1500, 11)
			})
		}
	}
}

func TestDecodeMatchesOracleOnRandomGreyBoxViews(t *testing.T) {
	spec := workloads.PaperExample()
	scheme, err := core.NewScheme(spec)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(10); seed < 14; seed++ {
		r, labeler := labeledRun(t, scheme, seed, 100)
		rng := rand.New(rand.NewSource(seed * 31))
		for n := 2; n <= 6; n += 2 {
			v, err := workloads.RandomView(spec, workloads.ViewOptions{
				Name:       fmt.Sprintf("grey-%d-%d", seed, n),
				Composites: n,
				Mode:       workloads.GreyBox,
				Rand:       rng,
			})
			if err != nil {
				t.Fatalf("random view: %v", err)
			}
			vl, err := scheme.LabelView(v, core.VariantQueryEfficient)
			if err != nil {
				t.Fatalf("labeling %q: %v", v.Name, err)
			}
			checkAgainstOracle(t, vl, labeler, r, v, 0, seed)
		}
	}
}

func TestDecodeMatchesOracleOnPartialRuns(t *testing.T) {
	spec := workloads.PaperExample()
	scheme, err := core.NewScheme(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := workloads.RandomRun(spec, workloads.RunOptions{TargetSize: 80, Rand: rand.New(rand.NewSource(5)), Partial: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.IsComplete() {
		t.Skip("random partial run happened to complete; nothing to test")
	}
	labeler, err := scheme.LabelRun(r)
	if err != nil {
		t.Fatal(err)
	}
	v := view.Default(spec)
	vl, err := scheme.LabelView(v, core.VariantDefault)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, vl, labeler, r, v, 0, 5)
}

func TestVisibilityMatchesProjection(t *testing.T) {
	spec := workloads.PaperExample()
	scheme, err := core.NewScheme(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, labeler := labeledRun(t, scheme, 3, 120)
	v, err := workloads.PaperSecurityView(spec)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := run.Project(r, v)
	if err != nil {
		t.Fatal(err)
	}
	vl, err := scheme.LabelView(v, core.VariantDefault)
	if err != nil {
		t.Fatal(err)
	}
	for _, item := range r.Items {
		l, ok := labeler.Label(item.ID)
		if !ok {
			t.Fatalf("no label for item %d", item.ID)
		}
		if got, want := vl.Visible(l), proj.VisibleItem(item.ID); got != want {
			t.Fatalf("Visible(item %d) = %v, projection says %v (label %v)", item.ID, got, want, l)
		}
	}
}

// TestSecurityViewChangesAnswer reproduces the behaviour of Example 8: the
// same pair of data items (an input and an output of a composite C instance)
// has different reachability answers under the default view and under the
// grey-box security view that hides C's internals behind complete
// dependencies.
func TestSecurityViewChangesAnswer(t *testing.T) {
	spec := workloads.PaperExample()
	scheme, err := core.NewScheme(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, labeler := labeledRun(t, scheme, 2, 60)

	secView, err := workloads.PaperSecurityView(spec)
	if err != nil {
		t.Fatal(err)
	}
	defLabel, err := scheme.LabelView(view.Default(spec), core.VariantQueryEfficient)
	if err != nil {
		t.Fatal(err)
	}
	secLabel, err := scheme.LabelView(secView, core.VariantQueryEfficient)
	if err != nil {
		t.Fatal(err)
	}

	// Find a C instance together with the data item entering its second input
	// port and the data item leaving its first output port. Under the default
	// view λ*(C) maps input 1 to output 0 as "no dependency"; under the
	// security view C is a grey box with complete dependencies, so the answer
	// flips to "yes".
	found := false
	for _, inst := range r.Instances {
		if inst.Module != "C" || len(inst.Inputs) < 2 || len(inst.Outputs) < 1 {
			continue
		}
		var dIn, dOut int
		for _, item := range r.Items {
			if item.Dst == inst.Inputs[1] {
				dIn = item.ID
			}
			if item.Src == inst.Outputs[0] {
				dOut = item.ID
			}
		}
		if dIn == 0 || dOut == 0 {
			continue
		}
		lIn, _ := labeler.Label(dIn)
		lOut, _ := labeler.Label(dOut)
		defAns, err := defLabel.DependsOn(lIn, lOut)
		if err != nil {
			t.Fatal(err)
		}
		secAns, err := secLabel.DependsOn(lIn, lOut)
		if err != nil {
			t.Fatal(err)
		}
		if defAns {
			t.Fatalf("under the default view output 0 of C must not depend on input 1 (λ*(C) is upper-triangular)")
		}
		if !secAns {
			t.Fatalf("under the security view output 0 of C must depend on input 1 (grey box with complete dependencies)")
		}
		found = true
		break
	}
	if !found {
		t.Fatalf("the derived run contains no suitable C instance; enlarge the run")
	}
}

func TestNewSchemeRejectsNonStrictlyLinearGrammar(t *testing.T) {
	spec := workloads.Figure10Example()
	if _, err := core.NewScheme(spec); err == nil {
		t.Fatalf("NewScheme must reject a grammar that is linear- but not strictly linear-recursive")
	}
	if _, err := core.NewSchemeBasic(spec); err != nil {
		t.Fatalf("NewSchemeBasic must accept any safe specification: %v", err)
	}
}

func TestBasicSchemeMatchesOracle(t *testing.T) {
	spec := workloads.Figure10Example()
	scheme, err := core.NewSchemeBasic(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := workloads.RandomRun(spec, workloads.RunOptions{TargetSize: 60, Rand: rand.New(rand.NewSource(9))})
	if err != nil {
		t.Fatal(err)
	}
	labeler, err := scheme.LabelRun(r)
	if err != nil {
		t.Fatal(err)
	}
	v := view.Default(spec)
	vl, err := scheme.LabelView(v, core.VariantDefault)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, vl, labeler, r, v, 0, 9)
}

func TestBasicSchemeOnPaperExampleMatchesCompactScheme(t *testing.T) {
	spec := workloads.PaperExample()
	compact, err := core.NewScheme(spec)
	if err != nil {
		t.Fatal(err)
	}
	basic, err := core.NewSchemeBasic(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := workloads.RandomRun(spec, workloads.RunOptions{TargetSize: 80, Rand: rand.New(rand.NewSource(21))})
	if err != nil {
		t.Fatal(err)
	}
	lc, err := compact.LabelRun(r)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := basic.LabelRun(r)
	if err != nil {
		t.Fatal(err)
	}
	v := view.Default(spec)
	vlc, err := compact.LabelView(v, core.VariantQueryEfficient)
	if err != nil {
		t.Fatal(err)
	}
	vlb, err := basic.LabelView(v, core.VariantQueryEfficient)
	if err != nil {
		t.Fatal(err)
	}
	for _, d1 := range r.Items {
		for _, d2 := range r.Items {
			a1, _ := lc.Label(d1.ID)
			a2, _ := lc.Label(d2.ID)
			b1, _ := lb.Label(d1.ID)
			b2, _ := lb.Label(d2.ID)
			ca, err := vlc.DependsOn(a1, a2)
			if err != nil {
				t.Fatal(err)
			}
			cb, err := vlb.DependsOn(b1, b2)
			if err != nil {
				t.Fatal(err)
			}
			if ca != cb {
				t.Fatalf("compact and basic schemes disagree on (%d,%d): %v vs %v", d1.ID, d2.ID, ca, cb)
			}
		}
	}
}

func TestLabelViewErrors(t *testing.T) {
	spec := workloads.PaperExample()
	scheme, err := core.NewScheme(spec)
	if err != nil {
		t.Fatal(err)
	}
	other := workloads.PaperExample()
	foreign := view.Default(other)
	if _, err := scheme.LabelView(foreign, core.VariantDefault); err == nil {
		t.Fatalf("LabelView must reject views over a different specification")
	}
}

func TestDependsOnRejectsInvisibleItems(t *testing.T) {
	spec := workloads.PaperExample()
	scheme, err := core.NewScheme(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, labeler := labeledRun(t, scheme, 4, 100)
	v, err := workloads.PaperSecurityView(spec)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := run.Project(r, v)
	if err != nil {
		t.Fatal(err)
	}
	vl, err := scheme.LabelView(v, core.VariantDefault)
	if err != nil {
		t.Fatal(err)
	}
	var hidden int
	for _, item := range r.Items {
		if !proj.VisibleItem(item.ID) {
			hidden = item.ID
			break
		}
	}
	if hidden == 0 {
		t.Skip("run has no hidden items under the security view")
	}
	lh, _ := labeler.Label(hidden)
	lv, _ := labeler.Label(1)
	if _, err := vl.DependsOn(lh, lv); err == nil {
		t.Fatalf("DependsOn must report an error for items hidden by the view")
	}
}

func TestDependsOnRejectsMalformedNodeIndices(t *testing.T) {
	// Data labels are untrusted input: an edge whose production is included
	// in the view but whose node index is out of range must yield an error,
	// not an out-of-range panic — on the materialized paths and on the
	// graph-search (space-efficient) path alike.
	spec := workloads.PaperExample()
	scheme, err := core.NewScheme(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, labeler := labeledRun(t, scheme, 61, 120)
	var initial, final, mid *core.DataLabel
	for _, item := range r.Items {
		d, _ := labeler.Label(item.ID)
		switch {
		case d.Out == nil:
			initial = d
		case d.In == nil:
			final = d
		case len(d.In.Path) > 0 && !d.In.Path[len(d.In.Path)-1].Recursive &&
			len(d.Out.Path) > 0 && !d.Out.Path[len(d.Out.Path)-1].Recursive:
			mid = d
		}
	}
	if initial == nil || final == nil || mid == nil {
		t.Fatal("run lacks an initial input, a final output or a suitable intermediate item")
	}
	corrupt := func(p *core.PortLabel) {
		last := p.Path[len(p.Path)-1]
		p.Path[len(p.Path)-1] = core.NonRecursiveEdge(last.K, 99)
	}
	badIn := mid.Clone()
	corrupt(badIn.In)
	badOut := mid.Clone()
	corrupt(badOut.Out)

	// A recursive edge with a cycle offset of 0 (the run labeler emits only
	// 1-based offsets) must be rejected by the visibility check rather than
	// panic the wraparound helpers.
	var badRec *core.DataLabel
	for _, item := range r.Items {
		d, _ := labeler.Label(item.ID)
		if d.In == nil {
			continue
		}
		for ei, e := range d.In.Path {
			if e.Recursive {
				badRec = d.Clone()
				badRec.In.Path[ei] = core.RecursiveEdge(e.S, 0, e.I)
				break
			}
		}
		if badRec != nil {
			break
		}
	}
	if badRec == nil {
		t.Fatal("no item with a recursive edge in its consuming path")
	}

	for _, variant := range allVariants {
		vl, err := scheme.LabelView(view.Default(spec), variant)
		if err != nil {
			t.Fatal(err)
		}
		for _, label := range []*core.ViewLabel{vl, vl.WithMatrixFree()} {
			// Case III chains the I matrices along the whole corrupted path.
			if _, err := label.DependsOn(initial, badIn); err == nil {
				t.Fatalf("variant %v accepted a consuming path with node index 99", variant)
			}
			// Case IV chains the O matrices along the whole corrupted path.
			if _, err := label.DependsOn(badOut, final); err == nil {
				t.Fatalf("variant %v accepted a producing path with node index 99", variant)
			}
			if _, err := label.DependsOn(initial, badRec); err == nil {
				t.Fatalf("variant %v accepted a recursive edge with offset 0", variant)
			}
		}
	}
}
