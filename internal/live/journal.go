package live

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/faults"
)

// The step journal is the durable form of a live session: the sequence of
// (instance, production) requests that, replayed against a fresh run of the
// same specification, reconstructs the session at any prefix. It is a flat
// binary stream:
//
//	offset  size  field
//	0       8     magic "FVLJRNL\x01" (the last byte is the format version)
//	8       —     records, each: uvarint instance, uvarint production
//
// Reading is an untrusted-input surface in the PR 3 style — a journal comes
// from disk or the network, so the decoder rejects, never panics:
//
//   - varints must be canonically (minimally) encoded, so every accepted
//     stream re-encodes bit-exactly (FuzzJournalReplay asserts this);
//   - instance and production values are bounded by maxJournalValue; real
//     values are small ints, the bound only stops corrupted bytes from
//     overflowing int on 32-bit targets;
//   - a record must be complete: a stream that ends mid-record is rejected;
//   - the record count is bounded by the input length by construction (each
//     record is at least two bytes), so decoding allocates O(len(input)).
//
// Whether the steps apply to the specification is not the codec's business:
// Resume replays them through run.Apply, which validates instance existence,
// production arity and expansion state step by step.

// journalMagic identifies a step journal; the final byte is the version.
var journalMagic = [8]byte{'F', 'V', 'L', 'J', 'R', 'N', 'L', 0x01}

// maxJournalValue bounds decoded instance and production values: they must
// fit an int32, far above any real derivation while keeping arithmetic on
// the decoded values safe everywhere an int is 32 bits.
const maxJournalValue = 1<<31 - 1

// JournalWriter appends step records to a stream. The header is written by
// NewJournalWriter, so even an empty journal is a valid artifact.
type JournalWriter struct {
	w io.Writer
}

// NewJournalWriter writes the journal header and returns a writer ready to
// append records.
func NewJournalWriter(w io.Writer) (*JournalWriter, error) {
	if w == nil {
		return nil, fmt.Errorf("live: nil journal writer")
	}
	if _, err := w.Write(journalMagic[:]); err != nil {
		return nil, err
	}
	return &JournalWriter{w: w}, nil
}

// ResumeJournalWriter returns a writer that appends records to w without
// writing a header — for continuing a journal whose header (and possibly a
// prefix of records) is already durable, such as a recovered segment file of
// a durable session.
func ResumeJournalWriter(w io.Writer) (*JournalWriter, error) {
	if w == nil {
		return nil, fmt.Errorf("live: nil journal writer")
	}
	return &JournalWriter{w: w}, nil
}

// Append writes one step record.
func (jw *JournalWriter) Append(req StepRequest) error {
	buf, err := appendRecord(nil, req)
	if err != nil {
		return err
	}
	_, err = jw.w.Write(buf)
	return err
}

// appendRecord encodes one record onto buf. Negative or oversized fields are
// rejected so the write path can only produce streams the read path accepts.
func appendRecord(buf []byte, req StepRequest) ([]byte, error) {
	if req.Instance < 0 || req.Instance > maxJournalValue {
		return nil, fmt.Errorf("live: journal instance %d out of range", req.Instance)
	}
	if req.Prod < 0 || req.Prod > maxJournalValue {
		return nil, fmt.Errorf("live: journal production %d out of range", req.Prod)
	}
	buf = binary.AppendUvarint(buf, uint64(req.Instance))
	buf = binary.AppendUvarint(buf, uint64(req.Prod))
	return buf, nil
}

// EncodeJournal renders a step sequence in the journal format. It is the
// one-shot form of NewJournalWriter + Append and fails only on out-of-range
// field values.
func EncodeJournal(steps []StepRequest) ([]byte, error) {
	buf := append([]byte(nil), journalMagic[:]...)
	var err error
	for _, req := range steps {
		if buf, err = appendRecord(buf, req); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// DecodeJournal parses a journal from untrusted bytes. Any structural
// problem — bad magic, a non-canonical or truncated varint, an out-of-range
// value — fails with an error wrapping ErrCorruptJournal; the decoder never
// panics. Every accepted stream re-encodes to exactly the input bytes.
func DecodeJournal(data []byte) ([]StepRequest, error) {
	if len(data) < len(journalMagic) || !bytes.Equal(data[:len(journalMagic)], journalMagic[:]) {
		return nil, fmt.Errorf("live: bad journal magic: %w", faults.ErrCorruptJournal)
	}
	rest := data[len(journalMagic):]
	// Each record is at least two bytes, so this bounds the allocation by
	// the input length.
	steps := make([]StepRequest, 0, len(rest)/2)
	for off := 0; off < len(rest); {
		instance, n, err := readValue(rest[off:])
		if err != nil {
			return nil, fmt.Errorf("live: journal record %d instance at offset %d: %w", len(steps)+1, off, err)
		}
		off += n
		prod, n, err := readValue(rest[off:])
		if err != nil {
			return nil, fmt.Errorf("live: journal record %d production at offset %d: %w", len(steps)+1, off, err)
		}
		off += n
		steps = append(steps, StepRequest{Instance: instance, Prod: prod})
	}
	return steps, nil
}

// ReadJournal decodes a journal from a reader incrementally (see
// DecodeJournal for the accepted format): the stream is consumed through a
// buffered record decoder, so resuming a large journal never holds the whole
// file in memory at once. Like DecodeJournal it is strict — a stream that
// ends mid-record fails (with an error wrapping both ErrTornJournal and
// ErrCorruptJournal); use JournalReader directly to handle torn tails.
func ReadJournal(r io.Reader) ([]StepRequest, error) {
	jr, err := NewJournalReader(r)
	if err != nil {
		return nil, err
	}
	var steps []StepRequest
	for {
		req, err := jr.Next()
		if err == io.EOF {
			return steps, nil
		}
		if err != nil {
			return nil, err
		}
		steps = append(steps, req)
	}
}

// JournalReader decodes a step journal one record at a time. It applies
// exactly the DecodeJournal validation rules, but additionally classifies
// where the stream ends:
//
//   - a stream ending at a record boundary is complete (Next returns io.EOF);
//   - a stream ending mid-record — or mid-header — is torn, the signature of
//     a crash mid-append: the error wraps both faults.ErrTornJournal and
//     faults.ErrCorruptJournal, so callers that do not care about the
//     distinction keep classifying it as corruption;
//   - every other structural problem (bad magic, non-canonical varint,
//     out-of-range value) wraps faults.ErrCorruptJournal only.
//
// Offset reports how many bytes of the stream the complete records span, so
// a recovery path that chooses to forgive a torn tail knows exactly where to
// truncate.
type JournalReader struct {
	br    *bufio.Reader
	off   int64 // bytes consumed by the header and complete records
	steps int   // complete records decoded
	err   error // sticky decode failure
}

// NewJournalReader reads and validates the journal header and returns a
// reader positioned at the first record. A stream shorter than the header is
// torn; a full-length header with the wrong bytes is corrupt.
func NewJournalReader(r io.Reader) (*JournalReader, error) {
	if r == nil {
		return nil, fmt.Errorf("live: nil journal reader")
	}
	br := bufio.NewReader(r)
	var magic [8]byte
	n, err := io.ReadFull(br, magic[:])
	switch {
	case err == io.EOF || err == io.ErrUnexpectedEOF:
		return nil, fmt.Errorf("live: journal header cut short at %d of %d bytes: %w (%w)",
			n, len(journalMagic), faults.ErrTornJournal, faults.ErrCorruptJournal)
	case err != nil:
		return nil, fmt.Errorf("live: reading journal header: %w", err)
	case magic != journalMagic:
		return nil, fmt.Errorf("live: bad journal magic: %w", faults.ErrCorruptJournal)
	}
	return &JournalReader{br: br, off: int64(len(journalMagic))}, nil
}

// Next decodes one record. It returns io.EOF when the stream ends at a
// record boundary; any other error is sticky.
func (jr *JournalReader) Next() (StepRequest, error) {
	if jr.err != nil {
		return StepRequest{}, jr.err
	}
	instance, n1, err := jr.readValue(true)
	if err == io.EOF {
		return StepRequest{}, io.EOF
	}
	if err != nil {
		jr.err = fmt.Errorf("live: journal record %d instance at offset %d: %w", jr.steps+1, jr.off, err)
		return StepRequest{}, jr.err
	}
	prod, n2, err := jr.readValue(false)
	if err != nil {
		jr.err = fmt.Errorf("live: journal record %d production at offset %d: %w", jr.steps+1, jr.off+int64(n1), err)
		return StepRequest{}, jr.err
	}
	jr.off += int64(n1 + n2)
	jr.steps++
	return StepRequest{Instance: instance, Prod: prod}, nil
}

// Steps returns the number of complete records decoded so far.
func (jr *JournalReader) Steps() int { return jr.steps }

// Offset returns the stream offset just past the last complete record (or
// past the header, before the first record) — the truncation point that
// discards a torn tail and nothing else.
func (jr *JournalReader) Offset() int64 { return jr.off }

// readValue decodes one bounded canonical uvarint from the buffered stream.
// first marks the start of a record: running out of bytes there is a clean
// io.EOF, anywhere else it is a torn record.
func (jr *JournalReader) readValue(first bool) (int, int, error) {
	// A varint is at most MaxVarintLen64 bytes; Peek returns fewer only when
	// the stream ends (or errors) first.
	buf, peekErr := jr.br.Peek(binary.MaxVarintLen64)
	if len(buf) == 0 {
		if peekErr == nil || peekErr == io.EOF {
			if first {
				return 0, 0, io.EOF
			}
			return 0, 0, fmt.Errorf("live: record cut short: %w (%w)", faults.ErrTornJournal, faults.ErrCorruptJournal)
		}
		return 0, 0, peekErr
	}
	v, n, err := readCanonicalUvarint(buf)
	if err != nil {
		if n == 0 {
			// The varint continues past the bytes we have; since Peek only
			// comes up short at stream end, the record is torn — unless the
			// shortfall was a read error, which is reported as itself.
			if peekErr != nil && peekErr != io.EOF {
				return 0, 0, peekErr
			}
			return 0, 0, fmt.Errorf("live: record cut short: %w (%w)", faults.ErrTornJournal, faults.ErrCorruptJournal)
		}
		return 0, 0, err
	}
	if v > maxJournalValue {
		return 0, 0, fmt.Errorf("live: value %d exceeds the journal bound: %w", v, faults.ErrCorruptJournal)
	}
	if _, err := jr.br.Discard(n); err != nil {
		return 0, 0, err
	}
	return int(v), n, nil
}

// readValue decodes one bounded canonical uvarint.
func readValue(b []byte) (int, int, error) {
	v, n, err := readCanonicalUvarint(b)
	if err != nil {
		return 0, 0, err
	}
	if v > maxJournalValue {
		return 0, 0, fmt.Errorf("live: value %d exceeds the journal bound: %w", v, faults.ErrCorruptJournal)
	}
	return int(v), n, nil
}

// readCanonicalUvarint decodes a uvarint and rejects non-minimal encodings:
// a multi-byte encoding whose last byte is zero carries redundant high bits,
// and accepting it would break the bit-exact re-encode guarantee. On failure
// the returned count is zero exactly when the input ran out mid-varint, so
// streaming callers can tell truncation from malformed bytes.
func readCanonicalUvarint(b []byte) (uint64, int, error) {
	v, n := binary.Uvarint(b)
	switch {
	case n == 0:
		return 0, 0, fmt.Errorf("live: truncated varint: %w", faults.ErrCorruptJournal)
	case n < 0:
		return 0, -n, fmt.Errorf("live: varint overflows 64 bits: %w", faults.ErrCorruptJournal)
	case n > 1 && b[n-1] == 0:
		return 0, n, fmt.Errorf("live: non-canonical varint: %w", faults.ErrCorruptJournal)
	}
	return v, n, nil
}
