package live

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/faults"
)

// The step journal is the durable form of a live session: the sequence of
// (instance, production) requests that, replayed against a fresh run of the
// same specification, reconstructs the session at any prefix. It is a flat
// binary stream:
//
//	offset  size  field
//	0       8     magic "FVLJRNL\x01" (the last byte is the format version)
//	8       —     records, each: uvarint instance, uvarint production
//
// Reading is an untrusted-input surface in the PR 3 style — a journal comes
// from disk or the network, so the decoder rejects, never panics:
//
//   - varints must be canonically (minimally) encoded, so every accepted
//     stream re-encodes bit-exactly (FuzzJournalReplay asserts this);
//   - instance and production values are bounded by maxJournalValue; real
//     values are small ints, the bound only stops corrupted bytes from
//     overflowing int on 32-bit targets;
//   - a record must be complete: a stream that ends mid-record is rejected;
//   - the record count is bounded by the input length by construction (each
//     record is at least two bytes), so decoding allocates O(len(input)).
//
// Whether the steps apply to the specification is not the codec's business:
// Resume replays them through run.Apply, which validates instance existence,
// production arity and expansion state step by step.

// journalMagic identifies a step journal; the final byte is the version.
var journalMagic = [8]byte{'F', 'V', 'L', 'J', 'R', 'N', 'L', 0x01}

// maxJournalValue bounds decoded instance and production values: they must
// fit an int32, far above any real derivation while keeping arithmetic on
// the decoded values safe everywhere an int is 32 bits.
const maxJournalValue = 1<<31 - 1

// JournalWriter appends step records to a stream. The header is written by
// NewJournalWriter, so even an empty journal is a valid artifact.
type JournalWriter struct {
	w io.Writer
}

// NewJournalWriter writes the journal header and returns a writer ready to
// append records.
func NewJournalWriter(w io.Writer) (*JournalWriter, error) {
	if w == nil {
		return nil, fmt.Errorf("live: nil journal writer")
	}
	if _, err := w.Write(journalMagic[:]); err != nil {
		return nil, err
	}
	return &JournalWriter{w: w}, nil
}

// Append writes one step record.
func (jw *JournalWriter) Append(req StepRequest) error {
	buf, err := appendRecord(nil, req)
	if err != nil {
		return err
	}
	_, err = jw.w.Write(buf)
	return err
}

// appendRecord encodes one record onto buf. Negative or oversized fields are
// rejected so the write path can only produce streams the read path accepts.
func appendRecord(buf []byte, req StepRequest) ([]byte, error) {
	if req.Instance < 0 || req.Instance > maxJournalValue {
		return nil, fmt.Errorf("live: journal instance %d out of range", req.Instance)
	}
	if req.Prod < 0 || req.Prod > maxJournalValue {
		return nil, fmt.Errorf("live: journal production %d out of range", req.Prod)
	}
	buf = binary.AppendUvarint(buf, uint64(req.Instance))
	buf = binary.AppendUvarint(buf, uint64(req.Prod))
	return buf, nil
}

// EncodeJournal renders a step sequence in the journal format. It is the
// one-shot form of NewJournalWriter + Append and fails only on out-of-range
// field values.
func EncodeJournal(steps []StepRequest) ([]byte, error) {
	buf := append([]byte(nil), journalMagic[:]...)
	var err error
	for _, req := range steps {
		if buf, err = appendRecord(buf, req); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// DecodeJournal parses a journal from untrusted bytes. Any structural
// problem — bad magic, a non-canonical or truncated varint, an out-of-range
// value — fails with an error wrapping ErrCorruptJournal; the decoder never
// panics. Every accepted stream re-encodes to exactly the input bytes.
func DecodeJournal(data []byte) ([]StepRequest, error) {
	if len(data) < len(journalMagic) || !bytes.Equal(data[:len(journalMagic)], journalMagic[:]) {
		return nil, fmt.Errorf("live: bad journal magic: %w", faults.ErrCorruptJournal)
	}
	rest := data[len(journalMagic):]
	// Each record is at least two bytes, so this bounds the allocation by
	// the input length.
	steps := make([]StepRequest, 0, len(rest)/2)
	for off := 0; off < len(rest); {
		instance, n, err := readValue(rest[off:])
		if err != nil {
			return nil, fmt.Errorf("live: journal record %d instance at offset %d: %w", len(steps)+1, off, err)
		}
		off += n
		prod, n, err := readValue(rest[off:])
		if err != nil {
			return nil, fmt.Errorf("live: journal record %d production at offset %d: %w", len(steps)+1, off, err)
		}
		off += n
		steps = append(steps, StepRequest{Instance: instance, Prod: prod})
	}
	return steps, nil
}

// ReadJournal decodes a journal from a reader (see DecodeJournal).
func ReadJournal(r io.Reader) ([]StepRequest, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("live: reading journal: %w", err)
	}
	return DecodeJournal(data)
}

// readValue decodes one bounded canonical uvarint.
func readValue(b []byte) (int, int, error) {
	v, n, err := readCanonicalUvarint(b)
	if err != nil {
		return 0, 0, err
	}
	if v > maxJournalValue {
		return 0, 0, fmt.Errorf("live: value %d exceeds the journal bound: %w", v, faults.ErrCorruptJournal)
	}
	return int(v), n, nil
}

// readCanonicalUvarint decodes a uvarint and rejects non-minimal encodings:
// a multi-byte encoding whose last byte is zero carries redundant high bits,
// and accepting it would break the bit-exact re-encode guarantee.
func readCanonicalUvarint(b []byte) (uint64, int, error) {
	v, n := binary.Uvarint(b)
	switch {
	case n == 0:
		return 0, 0, fmt.Errorf("live: truncated varint: %w", faults.ErrCorruptJournal)
	case n < 0:
		return 0, 0, fmt.Errorf("live: varint overflows 64 bits: %w", faults.ErrCorruptJournal)
	case n > 1 && b[n-1] == 0:
		return 0, 0, fmt.Errorf("live: non-canonical varint: %w", faults.ErrCorruptJournal)
	}
	return v, n, nil
}
