package live_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/live"
	"repro/internal/run"
	"repro/internal/view"
	"repro/internal/workflow"
	"repro/internal/workloads"
)

// recordSteps derives a random run and returns its step sequence as journal
// requests, in application order.
func recordSteps(t *testing.T, spec *workflow.Specification, target int, seed int64) []live.StepRequest {
	t.Helper()
	r, err := workloads.RandomRun(spec, workloads.RunOptions{
		TargetSize: target,
		Rand:       rand.New(rand.NewSource(seed)),
	})
	if err != nil {
		t.Fatalf("deriving random run: %v", err)
	}
	steps := make([]live.StepRequest, len(r.Steps))
	for i, st := range r.Steps {
		steps[i] = live.StepRequest{Instance: st.Instance, Prod: st.Prod}
	}
	return steps
}

// truncatedRun rebuilds the run consisting of the first k recorded steps.
func truncatedRun(t *testing.T, spec *workflow.Specification, steps []live.StepRequest, k int) *run.Run {
	t.Helper()
	r := run.New(spec)
	for i := 0; i < k; i++ {
		if _, err := r.Apply(steps[i].Instance, steps[i].Prod); err != nil {
			t.Fatalf("replaying step %d: %v", i+1, err)
		}
	}
	return r
}

// checkPrefixes is the prefix-differential invariant: after every checked
// prefix of k steps, the live session's published labels are byte-identical
// (under the scheme's codec) to Scheme.LabelRun on the truncated run, and
// reachability answers through the engine's session-aware batch path agree
// with the batch labels under all three view-label variants — plus the
// graph-search oracle on the truncated run's projection.
func checkPrefixes(t *testing.T, scheme *core.Scheme, v *view.View, steps []live.StepRequest) {
	t.Helper()
	sess, err := live.NewSession(scheme)
	if err != nil {
		t.Fatal(err)
	}
	codec := scheme.Codec()
	e := engine.New(2)

	variants := []core.Variant{core.VariantSpaceEfficient, core.VariantDefault, core.VariantQueryEfficient}
	labels := make([]*core.ViewLabel, len(variants))
	if v != nil {
		for i, variant := range variants {
			vl, err := scheme.LabelView(v, variant)
			if err != nil {
				t.Fatalf("labeling view (variant %v): %v", variant, err)
			}
			labels[i] = vl
		}
	}

	// Every prefix is byte-checked; queries are cross-checked on a stride so
	// the oracle's O(prefix) projection cost stays bounded.
	queryStride := len(steps)/8 + 1
	rng := rand.New(rand.NewSource(99))
	for k := 0; k <= len(steps); k++ {
		if k > 0 {
			epoch, err := sess.Apply(steps[k-1].Instance, steps[k-1].Prod)
			if err != nil {
				t.Fatalf("prefix %d: apply: %v", k, err)
			}
			if epoch != uint64(k) {
				t.Fatalf("prefix %d: apply returned epoch %d", k, epoch)
			}
		}
		prefix := sess.Current()
		if got, want := prefix.Epoch(), uint64(k); got != want {
			t.Fatalf("prefix %d: published epoch %d", k, got)
		}

		trunc := truncatedRun(t, scheme.Spec, steps, k)
		batch, err := scheme.LabelRun(trunc)
		if err != nil {
			t.Fatalf("prefix %d: batch labeling: %v", k, err)
		}
		if prefix.Items() != len(trunc.Items) || prefix.Items() != batch.Count() {
			t.Fatalf("prefix %d: %d live items, %d truncated items, %d batch labels",
				k, prefix.Items(), len(trunc.Items), batch.Count())
		}
		for id := 1; id <= prefix.Items(); id++ {
			liveLabel, ok := prefix.Label(id)
			if !ok {
				t.Fatalf("prefix %d: item %d unlabeled live", k, id)
			}
			batchLabel, ok := batch.Label(id)
			if !ok {
				t.Fatalf("prefix %d: item %d unlabeled by batch", k, id)
			}
			liveBuf, liveBits := codec.Encode(liveLabel)
			batchBuf, batchBits := codec.Encode(batchLabel)
			if liveBits != batchBits || !bytes.Equal(liveBuf, batchBuf) {
				t.Fatalf("prefix %d: item %d label differs: live %x/%d bits, batch %x/%d bits",
					k, id, liveBuf, liveBits, batchBuf, batchBits)
			}
		}
		if _, ok := prefix.Label(prefix.Items() + 1); ok {
			t.Fatalf("prefix %d: item beyond the prefix resolved", k)
		}

		if v == nil || (k%queryStride != 0 && k != len(steps)) {
			continue
		}
		proj, err := run.Project(trunc, v)
		if err != nil {
			t.Fatalf("prefix %d: projecting truncated run: %v", k, err)
		}
		queries := make([]engine.ItemQuery, 24)
		for i := range queries {
			queries[i] = engine.ItemQuery{
				From: 1 + rng.Intn(prefix.Items()),
				To:   1 + rng.Intn(prefix.Items()),
			}
		}
		// One unknown-item query rides along: beyond the prefix must fail
		// per-query with ErrUnknownItem, not poison the batch.
		queries = append(queries, engine.ItemQuery{From: prefix.Items() + 1, To: 1})
		for vi, vl := range labels {
			results, err := e.DependsOnItemsBatchContext(t.Context(), vl, prefix, queries)
			if err != nil {
				t.Fatalf("prefix %d variant %v: batch failed: %v", k, variants[vi], err)
			}
			for qi, q := range queries {
				res := results[qi]
				if q.From > prefix.Items() {
					if !errors.Is(res.Err, faults.ErrUnknownItem) {
						t.Fatalf("prefix %d variant %v: beyond-prefix query got %v", k, variants[vi], res.Err)
					}
					continue
				}
				d1, _ := batch.Label(q.From)
				d2, _ := batch.Label(q.To)
				want, wantErr := vl.DependsOn(d1, d2)
				if (res.Err == nil) != (wantErr == nil) || (wantErr != nil && !errors.Is(res.Err, faults.ErrHiddenItem)) {
					t.Fatalf("prefix %d variant %v query %v: live err %v, batch err %v",
						k, variants[vi], q, res.Err, wantErr)
				}
				if wantErr == nil && res.DependsOn != want {
					t.Fatalf("prefix %d variant %v query %v: live %v, batch %v",
						k, variants[vi], q, res.DependsOn, want)
				}
				if wantErr == nil && proj.VisibleItem(q.From) && proj.VisibleItem(q.To) {
					oracle, err := proj.DependsOn(q.From, q.To)
					if err != nil {
						t.Fatalf("prefix %d oracle %v: %v", k, q, err)
					}
					if oracle != res.DependsOn {
						t.Fatalf("prefix %d variant %v query %v: live %v, oracle %v",
							k, variants[vi], q, res.DependsOn, oracle)
					}
				}
			}
		}
	}
}

func TestPrefixDifferentialPaperExample(t *testing.T) {
	spec := workloads.PaperExample()
	scheme, err := core.NewScheme(spec)
	if err != nil {
		t.Fatal(err)
	}
	v, err := workloads.PaperSecurityView(spec)
	if err != nil {
		t.Fatal(err)
	}
	checkPrefixes(t, scheme, v, recordSteps(t, spec, 120, 7))
}

func TestPrefixDifferentialBioAID(t *testing.T) {
	spec := workloads.BioAID()
	scheme, err := core.NewScheme(spec)
	if err != nil {
		t.Fatal(err)
	}
	v, err := workloads.RandomView(spec, workloads.ViewOptions{
		Name: "live-diff", Composites: 8, Mode: workloads.GreyBox, Rand: rand.New(rand.NewSource(11)),
	})
	if err != nil {
		t.Fatal(err)
	}
	checkPrefixes(t, scheme, v, recordSteps(t, spec, 250, 13))
}

func TestPrefixDifferentialBasicScheme(t *testing.T) {
	spec := workloads.PaperExample()
	scheme, err := core.NewSchemeBasic(spec)
	if err != nil {
		t.Fatal(err)
	}
	v, err := workloads.PaperAbstractionView(spec)
	if err != nil {
		t.Fatal(err)
	}
	checkPrefixes(t, scheme, v, recordSteps(t, spec, 80, 21))
}

// TestResumeRebuildsExactPrefix closes the restartability loop: a session
// journaled with WithJournal, resumed from those bytes, publishes the same
// epoch, the same item count and byte-identical labels.
func TestResumeRebuildsExactPrefix(t *testing.T) {
	spec := workloads.BioAID()
	scheme, err := core.NewScheme(spec)
	if err != nil {
		t.Fatal(err)
	}
	steps := recordSteps(t, spec, 150, 3)

	var journal bytes.Buffer
	sess, err := live.NewSession(scheme, live.WithJournal(&journal))
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range steps {
		if _, err := sess.Apply(req.Instance, req.Prod); err != nil {
			t.Fatal(err)
		}
	}

	resumed, err := live.Resume(scheme, bytes.NewReader(journal.Bytes()))
	if err != nil {
		t.Fatalf("resuming: %v", err)
	}
	a, b := sess.Current(), resumed.Current()
	if a.Epoch() != b.Epoch() || a.Items() != b.Items() {
		t.Fatalf("resumed session at epoch %d/%d items, original %d/%d",
			b.Epoch(), b.Items(), a.Epoch(), a.Items())
	}
	codec := scheme.Codec()
	for id := 1; id <= a.Items(); id++ {
		la, _ := a.Label(id)
		lb, _ := b.Label(id)
		bufA, bitsA := codec.Encode(la)
		bufB, bitsB := codec.Encode(lb)
		if bitsA != bitsB || !bytes.Equal(bufA, bufB) {
			t.Fatalf("item %d: resumed label differs", id)
		}
	}

	// The exported journal of the resumed session's prefix matches the
	// original journal byte for byte.
	var exported bytes.Buffer
	if err := b.WriteJournal(&exported); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(exported.Bytes(), journal.Bytes()) {
		t.Fatalf("exported journal differs from the streamed one")
	}

	// Corrupt journals are rejected, never applied.
	bad := append([]byte(nil), journal.Bytes()...)
	bad[3] ^= 0xff
	if _, err := live.Resume(scheme, bytes.NewReader(bad)); !errors.Is(err, faults.ErrCorruptJournal) {
		t.Fatalf("corrupt journal: want ErrCorruptJournal, got %v", err)
	}
}
