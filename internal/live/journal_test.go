package live

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/faults"
)

func TestJournalRoundTrip(t *testing.T) {
	cases := [][]StepRequest{
		nil,
		{{Instance: 0, Prod: 1}},
		{{Instance: 0, Prod: 1}, {Instance: 3, Prod: 2}, {Instance: 127, Prod: 128}},
		{{Instance: maxJournalValue, Prod: maxJournalValue}},
	}
	for _, steps := range cases {
		buf, err := EncodeJournal(steps)
		if err != nil {
			t.Fatalf("encode %v: %v", steps, err)
		}
		got, err := DecodeJournal(buf)
		if err != nil {
			t.Fatalf("decode %v: %v", steps, err)
		}
		if len(got) != len(steps) {
			t.Fatalf("round trip %v -> %v", steps, got)
		}
		for i := range steps {
			if got[i] != steps[i] {
				t.Fatalf("round trip %v -> %v", steps, got)
			}
		}
	}
}

func TestJournalWriterMatchesEncode(t *testing.T) {
	steps := []StepRequest{{Instance: 0, Prod: 2}, {Instance: 5, Prod: 1}, {Instance: 300, Prod: 7}}
	var buf bytes.Buffer
	jw, err := NewJournalWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range steps {
		if err := jw.Append(req); err != nil {
			t.Fatal(err)
		}
	}
	oneShot, err := EncodeJournal(steps)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), oneShot) {
		t.Fatalf("streaming writer bytes differ from EncodeJournal:\n%x\n%x", buf.Bytes(), oneShot)
	}
}

func TestJournalEncodeRejectsOutOfRange(t *testing.T) {
	for _, steps := range [][]StepRequest{
		{{Instance: -1, Prod: 1}},
		{{Instance: 0, Prod: -2}},
		{{Instance: maxJournalValue + 1, Prod: 1}},
	} {
		if _, err := EncodeJournal(steps); err == nil {
			t.Fatalf("EncodeJournal(%v) accepted an out-of-range value", steps)
		}
	}
}

func TestJournalDecodeRejectsCorruption(t *testing.T) {
	valid, err := EncodeJournal([]StepRequest{{Instance: 1, Prod: 2}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":             {},
		"short magic":       valid[:4],
		"bad magic":         append([]byte("NOTAJRNL"), valid[8:]...),
		"wrong version":     append([]byte("FVLJRNL\x02"), valid[8:]...),
		"dangling instance": append(append([]byte{}, valid...), 0x05),
		"truncated varint":  append(append([]byte{}, valid...), 0x85),
		"varint overflow": append(append([]byte{}, valid...),
			0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02),
		"non-canonical varint": append(append([]byte{}, valid...), 0x81, 0x00, 0x01),
		"value over bound": append(append([]byte{}, valid...),
			0x80, 0x80, 0x80, 0x80, 0x08, 0x01), // 1<<31, just past maxJournalValue
	}
	for name, data := range cases {
		if _, err := DecodeJournal(data); !errors.Is(err, faults.ErrCorruptJournal) {
			t.Errorf("%s: want ErrCorruptJournal, got %v", name, err)
		}
	}
}

// FuzzJournalReplay is the untrusted-input guarantee of the journal decoder:
// arbitrary bytes either fail with an error (never a panic), or decode to a
// step sequence that re-encodes to exactly the input bytes — the decoder
// accepts precisely the encoder's image.
func FuzzJournalReplay(f *testing.F) {
	seed, err := EncodeJournal([]StepRequest{{Instance: 0, Prod: 1}, {Instance: 2, Prod: 3}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(journalMagic[:])
	f.Add([]byte{})
	f.Add(append(append([]byte{}, journalMagic[:]...), 0x81, 0x00, 0x01))
	f.Fuzz(func(t *testing.T, data []byte) {
		steps, err := DecodeJournal(data)
		if err != nil {
			if !errors.Is(err, faults.ErrCorruptJournal) {
				t.Fatalf("decode error outside the taxonomy: %v", err)
			}
			return
		}
		re, err := EncodeJournal(steps)
		if err != nil {
			t.Fatalf("accepted journal failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted journal is not bit-exact under re-encode:\nin:  %x\nout: %x", data, re)
		}
	})
}
