package live_test

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/live"
	"repro/internal/run"
	"repro/internal/workloads"
)

// observation is what one reader saw in one batch: the pinned epoch, the
// item count the prefix reported, the queries, their results, and one
// sampled label's encoding.
type observation struct {
	epoch        uint64
	items        int
	queries      []engine.ItemQuery
	results      []engine.Result
	sampledItem  int
	sampledLabel []byte
	sampledBits  int
}

// TestLiveSessionProducersAndReaders is the torn-state test of the epoch
// protocol, meant to run under -race (the CI race job runs the full suite
// with the detector on): N producer goroutines append frontier steps while
// M readers issue DependsOnItemsBatch through the engine pool against
// pinned prefixes. Afterwards every recorded answer is checked against the
// step prefix its batch pinned — labels are byte-identical to the batch
// labeling of that prefix (no torn labels), in-prefix answers match the
// final labels (labels are final on assignment), and beyond-prefix IDs
// failed with ErrUnknownItem even though the items existed by the time the
// batch ran.
func TestLiveSessionProducersAndReaders(t *testing.T) {
	const (
		producers = 3
		readers   = 3
		maxEpoch  = 300
		batchSize = 24
	)
	spec := workloads.BioAID()
	scheme, err := core.NewScheme(spec)
	if err != nil {
		t.Fatal(err)
	}
	v, err := workloads.RandomView(spec, workloads.ViewOptions{
		Name: "live-race", Composites: 8, Mode: workloads.GreyBox, Rand: rand.New(rand.NewSource(5)),
	})
	if err != nil {
		t.Fatal(err)
	}
	vl, err := scheme.LabelView(v, core.VariantQueryEfficient)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := live.NewSession(scheme)
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(2)
	codec := scheme.Codec()

	var producing atomic.Int32
	producing.Store(producers)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			defer producing.Add(-1)
			rng := rand.New(rand.NewSource(seed))
			for attempts := 0; attempts < 100000; attempts++ {
				if sess.Epoch() >= maxEpoch || sess.Err() != nil {
					return
				}
				frontier := sess.Frontier()
				if len(frontier) == 0 {
					return
				}
				inst := frontier[rng.Intn(len(frontier))]
				prods := sess.Expandable(inst)
				if len(prods) == 0 {
					continue // lost a race: another producer expanded it
				}
				// Apply may fail when another producer expanded the same
				// instance between Expandable and Apply; that rejection
				// leaves the session unchanged and the producer retries.
				sess.Apply(inst, prods[rng.Intn(len(prods))]) //nolint:errcheck
			}
		}(int64(100 + p))
	}

	obs := make([][]observation, readers)
	for m := 0; m < readers; m++ {
		wg.Add(1)
		go func(reader int, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			// Keep reading while any producer runs, but always issue a few
			// batches: on a single-P runtime the whole derivation can finish
			// before a reader is first scheduled, and a batch pinned at the
			// final epoch still exercises the prefix-consistency contract.
			for batch := 0; producing.Load() > 0 || batch < 5; batch++ {
				prefix := sess.Current()
				n := prefix.Items()
				if n == 0 {
					continue
				}
				queries := make([]engine.ItemQuery, batchSize)
				for i := range queries {
					// +3 slack: some IDs fall beyond the pinned prefix and
					// must fail with ErrUnknownItem even if a concurrent
					// producer has already created them.
					queries[i] = engine.ItemQuery{From: 1 + rng.Intn(n+3), To: 1 + rng.Intn(n+3)}
				}
				results := e.DependsOnItemsBatch(vl, prefix, queries)
				sampled := 1 + rng.Intn(n)
				d, ok := prefix.Label(sampled)
				if !ok {
					t.Errorf("reader %d: item %d within the prefix had no label", reader, sampled)
					return
				}
				buf, bits := codec.Encode(d)
				obs[reader] = append(obs[reader], observation{
					epoch:        prefix.Epoch(),
					items:        n,
					queries:      queries,
					results:      results,
					sampledItem:  sampled,
					sampledLabel: buf,
					sampledBits:  bits,
				})
			}
		}(m, int64(200+m))
	}
	wg.Wait()
	if err := sess.Err(); err != nil {
		t.Fatalf("session poisoned: %v", err)
	}

	// Rebuild the ground truth from the session's own step sequence:
	// itemsAt[e] is the item count after e steps, and the final batch
	// labeling provides every label (labels are final on assignment, so a
	// label read at any epoch must equal the final one).
	final := sess.Current()
	steps := final.Steps()
	replay := run.New(spec)
	itemsAt := []int{len(replay.Items)}
	for i, req := range steps {
		if _, err := replay.Apply(req.Instance, req.Prod); err != nil {
			t.Fatalf("replaying session step %d: %v", i+1, err)
		}
		itemsAt = append(itemsAt, len(replay.Items))
	}
	batch, err := scheme.LabelRun(replay)
	if err != nil {
		t.Fatal(err)
	}

	checked := 0
	for reader := range obs {
		for _, o := range obs[reader] {
			if o.epoch > uint64(len(steps)) {
				t.Fatalf("reader %d pinned epoch %d beyond the final %d", reader, o.epoch, len(steps))
			}
			if o.items != itemsAt[o.epoch] {
				t.Fatalf("reader %d: prefix at epoch %d reported %d items, derivation had %d",
					reader, o.epoch, o.items, itemsAt[o.epoch])
			}
			want, ok := batch.Label(o.sampledItem)
			if !ok {
				t.Fatalf("item %d missing from the final labeling", o.sampledItem)
			}
			wantBuf, wantBits := codec.Encode(want)
			if o.sampledBits != wantBits || !bytes.Equal(o.sampledLabel, wantBuf) {
				t.Fatalf("reader %d epoch %d: torn label for item %d", reader, o.epoch, o.sampledItem)
			}
			for qi, q := range o.queries {
				res := o.results[qi]
				if q.From > o.items || q.To > o.items {
					if !errors.Is(res.Err, faults.ErrUnknownItem) {
						t.Fatalf("reader %d epoch %d: query %v beyond the prefix answered %+v",
							reader, o.epoch, q, res)
					}
					continue
				}
				d1, _ := batch.Label(q.From)
				d2, _ := batch.Label(q.To)
				wantAns, wantErr := vl.DependsOn(d1, d2)
				if (res.Err == nil) != (wantErr == nil) {
					t.Fatalf("reader %d epoch %d query %v: err %v, want %v", reader, o.epoch, q, res.Err, wantErr)
				}
				if wantErr == nil && res.DependsOn != wantAns {
					t.Fatalf("reader %d epoch %d query %v: answer %v inconsistent with its prefix",
						reader, o.epoch, q, res.DependsOn)
				}
				checked++
			}
		}
	}
	if final.Epoch() < 10 || checked == 0 {
		t.Fatalf("test exercised too little: final epoch %d, %d checked answers", final.Epoch(), checked)
	}
}
