// Package live serves dependency queries over runs that are still executing.
// The paper's central claim is that runs are labeled on-the-fly (Section
// 4.2.3): a data item's label is final the moment the item is produced, so
// reachability questions can be answered during the run, not only after it.
// This package closes the gap between that claim and the batch consumers of
// the rest of the system: a Session wraps a run.Run together with its
// core.RunLabeler behind an epoch-based single-writer/multi-reader protocol.
//
// # The epoch protocol
//
// Producers (Apply, Feed) serialize on the session's mutex, advance the
// derivation one step at a time and let the labeler assign labels to the new
// data items. After each step the session publishes an immutable Prefix — the
// epoch number (= derivation steps applied), the labels assigned so far and
// the step requests that produced them — through one atomic pointer store.
//
// Readers never take a lock and are never stopped: Current() is one atomic
// load, and everything reachable from the returned Prefix is frozen. Three
// facts make this safe without copying any per-item state:
//
//   - data labels are write-once: the labeler never modifies a label after
//     assigning it (the view-adaptive property — that is what makes the
//     scheme dynamic), so sharing the label pointers is sound;
//   - item IDs are contiguous, so the labels live in one slice indexed by
//     itemID-1; the producer appends to its private tail and publishes a
//     length-capped alias, so a reader's slice header can never see an
//     in-flight append;
//   - the atomic pointer store happens after every write the Prefix exposes,
//     so the publish is also the memory barrier (release/acquire).
//
// Every published Prefix therefore corresponds to an exact step prefix of
// the derivation, and every answer computed from one Prefix is consistent
// with that prefix — the invariant the race and differential tests assert.
//
// A Session is restartable: attach a journal (WithJournal) to persist each
// applied step, and Resume replays the journal into a fresh session. The
// journal codec lives in journal.go.
package live

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/run"
)

// StepRequest asks a session to expand the composite module instance
// Instance with the production of 1-based index Prod. It is also the record
// type of the step journal.
type StepRequest struct {
	Instance int
	Prod     int
}

// Option configures a Session.
type Option func(*Session)

// WithJournal attaches a step journal: every successfully applied step is
// appended to w (journal format, see journal.go) before it is published, so
// a crashed or stopped session can be rebuilt with Resume. A write error
// poisons the session — the failed step is never published, and further
// producer calls fail — because a session that silently outruns its journal
// would no longer be restartable.
func WithJournal(w io.Writer) Option {
	return func(s *Session) { s.journalDst = w }
}

// JournalSink receives every successfully applied step before it is
// published. It generalizes WithJournal for sinks that own their framing —
// the durable session store appends to segment files with its own rotation
// and sync policy, so the plain header-plus-records stream of a JournalWriter
// does not fit. An Append error poisons the session, exactly like a journal
// write error.
type JournalSink interface {
	Append(StepRequest) error
}

// WithJournalSink attaches a step sink (see JournalSink). It is mutually
// exclusive with WithJournal; the last option wins.
func WithJournalSink(sink JournalSink) Option {
	return func(s *Session) {
		s.sink = sink
		s.journalDst = nil
	}
}

// Session is a live run: a derivation in progress whose data items are
// labeled the moment they are produced, and whose labels can be read by any
// number of concurrent readers while producers keep appending steps.
//
// Producer methods (Apply, Feed) are safe for concurrent use and serialize
// internally; reader methods (Current, Label, Epoch, Items) are lock-free.
type Session struct {
	scheme  *core.Scheme
	run     *run.Run
	labeler *core.RunLabeler

	mu     sync.Mutex
	sink   JournalSink
	failed error
	labels []*core.DataLabel
	steps  []StepRequest

	cur atomic.Pointer[Prefix]

	journalDst io.Writer // set by WithJournal, consumed by NewSession
}

// NewSession starts a live run of the scheme's specification: the unexpanded
// start module with its initial inputs and final outputs, all labeled, at
// epoch 0.
func NewSession(scheme *core.Scheme, opts ...Option) (*Session, error) {
	if scheme == nil {
		return nil, fmt.Errorf("live: nil scheme")
	}
	s := &Session{scheme: scheme}
	for _, opt := range opts {
		opt(s)
	}
	if s.journalDst != nil {
		jw, err := NewJournalWriter(s.journalDst)
		if err != nil {
			return nil, fmt.Errorf("live: starting journal: %w", err)
		}
		s.sink = jw
	}
	s.run = run.New(scheme.Spec)
	s.labeler = scheme.NewRunLabeler()
	if err := s.labeler.OnInit(s.run); err != nil {
		return nil, err
	}
	for _, item := range s.run.Items {
		d, ok := s.labeler.Label(item.ID)
		if !ok || item.ID != len(s.labels)+1 {
			return nil, fmt.Errorf("live: initial item %d left unlabeled", item.ID)
		}
		s.labels = append(s.labels, d)
	}
	s.publishLocked()
	return s, nil
}

// Resume rebuilds a session by replaying a step journal (written by a
// session opened with WithJournal, or exported with Prefix.WriteJournal).
// The journal bytes are untrusted: corruption fails with ErrCorruptJournal,
// and steps that do not apply to the specification fail with the underlying
// apply error. Options apply to the new session, so Resume(..., WithJournal)
// re-persists the replayed steps onto the fresh journal.
func Resume(scheme *core.Scheme, journal io.Reader, opts ...Option) (*Session, error) {
	steps, err := ReadJournal(journal)
	if err != nil {
		return nil, err
	}
	s, err := NewSession(scheme, opts...)
	if err != nil {
		return nil, err
	}
	for i, req := range steps {
		if _, err := s.Apply(req.Instance, req.Prod); err != nil {
			return nil, fmt.Errorf("live: replaying journal step %d of %d: %w", i+1, len(steps), err)
		}
	}
	return s, nil
}

// Restore rebuilds a session directly from recovered state — a run, the
// labeler that labeled it, and the step requests that produced it — without
// replaying a single step. It is the fast-path counterpart of Resume for
// checkpoint-based recovery: the caller restores run and labeler from a
// checkpoint artifact (run.Restore, Scheme.RestoreRunLabeler), replays only
// the journal tail through Apply, and the session continues from there.
//
// The pieces must agree: the run must belong to the scheme's specification,
// steps must match the run's recorded derivation step for step, and every
// data item of the run must already carry a label. Options apply as in
// NewSession, except that a journal attached here starts at the restored
// epoch — the restored steps are not re-appended (they are already durable
// wherever the caller recovered them from).
func Restore(scheme *core.Scheme, r *run.Run, labeler *core.RunLabeler, steps []StepRequest, opts ...Option) (*Session, error) {
	if scheme == nil || r == nil || labeler == nil {
		return nil, fmt.Errorf("live: restore needs a scheme, a run and a labeler")
	}
	if r.Spec != scheme.Spec {
		return nil, fmt.Errorf("live: restored run: %w", faults.ErrForeignLabel)
	}
	if len(steps) != len(r.Steps) {
		return nil, fmt.Errorf("live: %d step requests for a run of %d steps", len(steps), len(r.Steps))
	}
	for i, req := range steps {
		if rec := r.Steps[i]; req.Instance != rec.Instance || req.Prod != rec.Prod {
			return nil, fmt.Errorf("live: step request %d (%d, %d) does not match the run's step (%d, %d)",
				i+1, req.Instance, req.Prod, rec.Instance, rec.Prod)
		}
	}
	s := &Session{scheme: scheme}
	for _, opt := range opts {
		opt(s)
	}
	if s.journalDst != nil {
		jw, err := NewJournalWriter(s.journalDst)
		if err != nil {
			return nil, fmt.Errorf("live: starting journal: %w", err)
		}
		s.sink = jw
	}
	s.run = r
	s.labeler = labeler
	for _, item := range r.Items {
		d, ok := labeler.Label(item.ID)
		if !ok || item.ID != len(s.labels)+1 {
			return nil, fmt.Errorf("live: restored item %d has no label", item.ID)
		}
		s.labels = append(s.labels, d)
	}
	s.steps = append(s.steps, steps...)
	s.publishLocked()
	return s, nil
}

// Exclusive runs fn with the session's producer lock held, passing the live
// run and labeler. No step can be applied while fn runs, so fn observes (run,
// labeler, published prefix) at one consistent epoch — the window a durable
// checkpoint is captured in. fn must treat both arguments as read-only and
// must not call back into the session.
//
// A poisoned session refuses: after a labeling or journal failure the
// in-memory state may be ahead of the last published epoch, so there is no
// consistent state to expose.
func (s *Session) Exclusive(fn func(r *run.Run, labeler *core.RunLabeler) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil {
		return fmt.Errorf("live: session is poisoned: %w", s.failed)
	}
	return fn(s.run, s.labeler)
}

// publishLocked publishes the current producer state as a new Prefix. The
// slices are length-capped so a reader can never observe a later append
// through an aliased tail.
func (s *Session) publishLocked() {
	n, k := len(s.labels), len(s.steps)
	s.cur.Store(&Prefix{
		epoch:  uint64(k),
		labels: s.labels[:n:n],
		steps:  s.steps[:k:k],
	})
}

// Apply expands the composite instance with the 1-based production index,
// labels the data items the step produced and publishes the new epoch. It
// returns the epoch at which the step became visible to readers.
//
// A rejected step (unknown instance, wrong production) leaves the session
// unchanged and usable. A labeling or journal failure poisons the session:
// the step is never published, readers keep answering at the last good
// epoch, and every later producer call fails with the original error.
func (s *Session) Apply(instance, prod int) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil {
		return 0, fmt.Errorf("live: session is poisoned: %w", s.failed)
	}
	step, err := s.run.Apply(instance, prod)
	if err != nil {
		return 0, err
	}
	if err := s.labeler.OnStep(s.run, step); err != nil {
		s.failed = err
		return 0, fmt.Errorf("live: labeling step %d poisoned the session: %w", step.Index, err)
	}
	for _, itemID := range step.NewItems {
		d, ok := s.labeler.Label(itemID)
		if !ok || itemID != len(s.labels)+1 {
			s.failed = fmt.Errorf("live: step %d produced item %d out of order", step.Index, itemID)
			return 0, s.failed
		}
		s.labels = append(s.labels, d)
	}
	req := StepRequest{Instance: instance, Prod: prod}
	if s.sink != nil {
		if err := s.sink.Append(req); err != nil {
			s.failed = fmt.Errorf("live: journaling step %d: %w", step.Index, err)
			return 0, s.failed
		}
	}
	s.steps = append(s.steps, req)
	s.publishLocked()
	return uint64(len(s.steps)), nil
}

// Feed drains step requests from the channel into the session until the
// channel closes (returns nil), the context is canceled (ErrCanceled), or a
// step fails (the apply error). It is the producer half of a streaming
// ingestion pipeline; multiple Feed calls and direct Apply calls may run
// concurrently.
func (s *Session) Feed(ctx context.Context, reqs <-chan StepRequest) error {
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		select {
		case <-ctx.Done():
			return fmt.Errorf("live: feed canceled at epoch %d: %w (%v)", s.Epoch(), faults.ErrCanceled, context.Cause(ctx))
		case req, ok := <-reqs:
			if !ok {
				return nil
			}
			if _, err := s.Apply(req.Instance, req.Prod); err != nil {
				return err
			}
		}
	}
}

// Current returns the session's latest published prefix: one atomic load,
// never blocking producers. The returned Prefix is immutable; hold it to
// answer a whole batch of queries against one consistent epoch.
func (s *Session) Current() *Prefix { return s.cur.Load() }

// Epoch returns the latest published epoch (the number of derivation steps
// visible to readers).
func (s *Session) Epoch() uint64 { return s.Current().Epoch() }

// Items returns the number of labeled data items at the latest epoch.
func (s *Session) Items() int { return s.Current().Items() }

// Label returns the label of the data item at the latest epoch.
func (s *Session) Label(itemID int) (*core.DataLabel, bool) {
	return s.Current().Label(itemID)
}

// Scheme returns the labeling scheme the session labels with.
func (s *Session) Scheme() *core.Scheme { return s.scheme }

// Frontier returns the IDs of the unexpanded composite instances — the
// steps a producer may apply next. It reflects every applied step, including
// ones a concurrent producer applied after the latest Current() load.
func (s *Session) Frontier() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.run.Frontier()
}

// IsComplete reports whether every composite instance has been expanded.
func (s *Session) IsComplete() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.run.IsComplete()
}

// Expandable returns the 1-based indices of the productions that can expand
// the given instance — the valid Prod values of a StepRequest for it. It
// returns nil when the instance is unknown, already expanded, or atomic, so
// producers can drive a run knowing only frontier IDs.
func (s *Session) Expandable(instanceID int) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	inst, ok := s.run.Instance(instanceID)
	if !ok || inst.Prod != 0 {
		return nil
	}
	return s.scheme.Spec.Grammar.ProductionsFor(inst.Module)
}

// Err returns the error that poisoned the session, or nil.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed
}

// Prefix is an immutable snapshot of a session at one epoch: the labels of
// every data item produced by the first Epoch() derivation steps. It answers
// label lookups lock-free and implements the label-resolution interface of
// the engine's session-aware batch path (engine.LabelSource).
type Prefix struct {
	epoch  uint64
	labels []*core.DataLabel
	steps  []StepRequest
}

// Epoch returns the number of derivation steps this prefix covers.
func (p *Prefix) Epoch() uint64 { return p.epoch }

// Items returns the number of data items labeled at this prefix.
func (p *Prefix) Items() int { return len(p.labels) }

// Label returns the label of the data item, or false when the item had not
// been produced by this prefix (or the ID is unknown).
func (p *Prefix) Label(itemID int) (*core.DataLabel, bool) {
	if itemID < 1 || itemID > len(p.labels) {
		return nil, false
	}
	return p.labels[itemID-1], true
}

// Steps returns a copy of the step requests the prefix covers, in
// application order — the journal of the prefix as values.
func (p *Prefix) Steps() []StepRequest {
	return append([]StepRequest(nil), p.steps...)
}

// WriteJournal exports the prefix's steps in the journal format, so the
// session can be rebuilt up to exactly this epoch with Resume.
func (p *Prefix) WriteJournal(w io.Writer) error {
	jw, err := NewJournalWriter(w)
	if err != nil {
		return err
	}
	for _, req := range p.steps {
		if err := jw.Append(req); err != nil {
			return err
		}
	}
	return nil
}
