package workloads

import "repro/internal/workflow"

// Figure10Example builds the specification of Figure 10 of the paper: a
// grammar that is linear-recursive but not strictly linear-recursive, because
// the start module S carries two distinct self-recursions (one through a, one
// through b). The dependency assignment is black-box, so the specification is
// safe (Lemma 2); nevertheless Theorem 6 shows no compact dynamic labeling
// scheme exists for it, which is why core.NewScheme rejects it and only the
// basic (linear-size-label) scheme applies.
func Figure10Example() *workflow.Specification {
	b := workflow.NewBuilder().
		Module("S", 1, 1).
		Module("a", 1, 1).
		Module("b", 1, 1).
		Module("c", 1, 1).
		Start("S")

	wa := workflow.NewWorkflow()
	wa.Node("a")
	wa.Node("S")
	wa.Edge("a", 0, "S", 0)
	b.Production("S", wa.Workflow())

	wb := workflow.NewWorkflow()
	wb.Node("b")
	wb.Node("S")
	wb.Edge("b", 0, "S", 0)
	b.Production("S", wb.Workflow())

	wc := workflow.NewWorkflow()
	wc.Node("c")
	b.Production("S", wc.Workflow())

	b.BlackBox("a", "b", "c")
	return b.MustBuild()
}
