package workloads

import (
	"fmt"

	"repro/internal/run"
	"repro/internal/workflow"
)

// DeepRun derives a run that exercises the full nesting structure of the
// specification before growing to the target size: as long as some production
// would introduce a composite module that has not yet appeared in the run,
// one such production is applied (descending through nested recursion levels
// and covering every composite of the grammar); afterwards the run grows to
// the target size exactly like RandomRun. The synthetic experiments of
// Section 6.5 use this derivation so that the nesting-depth parameter is
// actually reflected in the runs being labeled.
func DeepRun(spec *workflow.Specification, opts RunOptions) (*run.Run, error) {
	if opts.Rand == nil {
		return nil, fmt.Errorf("workloads: RunOptions.Rand must not be nil")
	}
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = 50*opts.TargetSize + 1000
	}
	growing, terminating := classifyProductions(spec.Grammar)

	r := run.New(spec)
	seen := map[string]bool{spec.Grammar.Start: true}
	steps := 0

	// Phase 1: cover every composite module reachable from the start.
	for {
		type candidate struct {
			inst, prod, novel int
		}
		var best *candidate
		for _, instID := range r.Frontier() {
			inst, _ := r.Instance(instID)
			for _, k := range spec.Grammar.ProductionsFor(inst.Module) {
				novel := 0
				for _, node := range spec.Grammar.Productions[k-1].RHS.Nodes {
					if spec.Grammar.IsComposite(node) && !seen[node] {
						novel++
					}
				}
				if novel == 0 {
					continue
				}
				if best == nil || novel > best.novel {
					best = &candidate{inst: instID, prod: k, novel: novel}
				}
			}
		}
		if best == nil {
			break
		}
		if steps >= maxSteps {
			return nil, fmt.Errorf("workloads: coverage phase did not terminate within %d steps", maxSteps)
		}
		step, err := r.Apply(best.inst, best.prod)
		if err != nil {
			return nil, err
		}
		for _, id := range step.NewInstances {
			inst, _ := r.Instance(id)
			seen[inst.Module] = true
		}
		steps++
	}

	// Phase 2: grow to the target size and terminate, as in RandomRun.
	for {
		frontier := r.Frontier()
		if len(frontier) == 0 {
			break
		}
		if opts.Partial && r.Size() >= opts.TargetSize {
			break
		}
		if steps >= maxSteps {
			return nil, fmt.Errorf("workloads: derivation did not terminate within %d steps", maxSteps)
		}
		instID := frontier[opts.Rand.Intn(len(frontier))]
		inst, _ := r.Instance(instID)
		var prod int
		if r.Size() < opts.TargetSize {
			prod = pickProduction(opts.Rand, growing[inst.Module], spec.Grammar.ProductionsFor(inst.Module))
		} else {
			prod = pickProduction(opts.Rand, terminating[inst.Module], spec.Grammar.ProductionsFor(inst.Module))
		}
		if _, err := r.Apply(instID, prod); err != nil {
			return nil, err
		}
		steps++
	}
	return r, nil
}
