package workloads

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/prodgraph"
	"repro/internal/safety"
	"repro/internal/workflow"
)

func TestBioAIDMatchesPaperStatistics(t *testing.T) {
	spec := BioAID()
	if err := spec.Validate(); err != nil {
		t.Fatalf("BioAID invalid: %v", err)
	}
	g := spec.Grammar
	if got := len(g.Modules); got != 112 {
		t.Errorf("module count = %d, want 112", got)
	}
	if got := len(g.Composites()); got != 16 {
		t.Errorf("composite module count = %d, want 16", got)
	}
	if got := len(g.Productions); got != 23 {
		t.Errorf("production count = %d, want 23", got)
	}
	pg := prodgraph.New(g)
	if !pg.IsStrictlyLinearRecursive() {
		t.Fatalf("BioAID must be strictly linear-recursive")
	}
	cycles, err := pg.Cycles()
	if err != nil {
		t.Fatal(err)
	}
	recursiveProds := map[int]bool{}
	for _, c := range cycles {
		for _, e := range c.Edges {
			recursiveProds[e.K] = true
		}
	}
	if got := len(recursiveProds); got != 7 {
		t.Errorf("recursive production count = %d, want 7", got)
	}
	maxRHS, maxIn, maxOut := 0, 0, 0
	for _, p := range g.Productions {
		if len(p.RHS.Nodes) > maxRHS {
			maxRHS = len(p.RHS.Nodes)
		}
	}
	for _, m := range g.Modules {
		if m.In > maxIn {
			maxIn = m.In
		}
		if m.Out > maxOut {
			maxOut = m.Out
		}
	}
	if maxRHS > 19 {
		t.Errorf("largest production right-hand side has %d modules, paper reports at most 19", maxRHS)
	}
	if maxIn > 4 || maxOut > 7 {
		t.Errorf("module degree (%d in, %d out) exceeds the paper's 4/7", maxIn, maxOut)
	}
	if _, err := safety.Check(spec); err != nil {
		t.Fatalf("BioAID must be safe: %v", err)
	}
	if spec.IsCoarseGrained() {
		t.Errorf("BioAID must carry fine-grained dependencies")
	}
}

func TestBioAIDBlackBoxViewsAreSafe(t *testing.T) {
	spec := BioAID()
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 8, 16} {
		v, err := RandomView(spec, ViewOptions{Name: fmt.Sprintf("bb-%d", n), Composites: n, Mode: BlackBox, Rand: rng})
		if err != nil {
			t.Fatalf("black-box view with %d composites: %v", n, err)
		}
		if !v.IsSafe() {
			t.Fatalf("black-box view with %d composites unsafe: %v", n, v.SafetyError())
		}
		if got := len(v.ExpandableModules()); got != n {
			t.Errorf("view has %d expandable composites, want %d", got, n)
		}
	}
}

func TestBioAIDGreyBoxViewsAreSafe(t *testing.T) {
	spec := BioAID()
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 8, 16} {
		v, err := RandomView(spec, ViewOptions{Name: fmt.Sprintf("grey-%d", n), Composites: n, Mode: GreyBox, Rand: rng})
		if err != nil {
			t.Fatal(err)
		}
		if !v.IsSafe() {
			t.Fatalf("generated grey-box view is unsafe: %v", v.SafetyError())
		}
	}
}

func TestBioAIDRandomRunsReachTargetSizes(t *testing.T) {
	spec := BioAID()
	for _, target := range []int{1000, 4000} {
		r, err := RandomRun(spec, RunOptions{TargetSize: target, Rand: rand.New(rand.NewSource(int64(target)))})
		if err != nil {
			t.Fatal(err)
		}
		if !r.IsComplete() {
			t.Fatalf("run of target %d is not complete", target)
		}
		if r.Size() < target {
			t.Fatalf("run size %d below target %d", r.Size(), target)
		}
		if r.Size() > 3*target {
			t.Fatalf("run size %d overshoots target %d by more than 3x", r.Size(), target)
		}
	}
}

func TestSyntheticDefaultsAreStrictlyLinearAndSafe(t *testing.T) {
	spec := Synthetic(DefaultSyntheticParams())
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	pg := prodgraph.New(spec.Grammar)
	if !pg.IsStrictlyLinearRecursive() {
		t.Fatalf("synthetic default workflow must be strictly linear-recursive")
	}
	if _, err := safety.Check(spec); err != nil {
		t.Fatalf("synthetic default workflow must be safe: %v", err)
	}
	params := DefaultSyntheticParams()
	if got := len(spec.Grammar.Composites()); got != params.NestingDepth*params.RecursionLength {
		t.Errorf("composite count = %d, want depth*recursion = %d", got, params.NestingDepth*params.RecursionLength)
	}
	for _, p := range spec.Grammar.Productions {
		if got := len(p.RHS.Nodes); got != params.WorkflowSize {
			t.Errorf("production %q right-hand side has %d nodes, want %d", p.LHS, got, params.WorkflowSize)
		}
	}
}

func TestSyntheticParameterSweepsProduceValidSpecifications(t *testing.T) {
	base := DefaultSyntheticParams()
	cases := []SyntheticParams{}
	for _, size := range []int{10, 20, 40, 80} {
		p := base
		p.WorkflowSize = size
		cases = append(cases, p)
	}
	for _, deg := range []int{2, 4, 6, 8, 10} {
		p := base
		p.ModuleDegree = deg
		cases = append(cases, p)
	}
	for _, depth := range []int{2, 6, 10} {
		p := base
		p.NestingDepth = depth
		cases = append(cases, p)
	}
	for _, rec := range []int{1, 2, 3, 5} {
		p := base
		p.RecursionLength = rec
		cases = append(cases, p)
	}
	for _, p := range cases {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			spec := Synthetic(p)
			if err := spec.Validate(); err != nil {
				t.Fatalf("invalid: %v", err)
			}
			pg := prodgraph.New(spec.Grammar)
			if !pg.IsStrictlyLinearRecursive() {
				t.Fatalf("not strictly linear-recursive")
			}
			cycles, err := pg.Cycles()
			if err != nil {
				t.Fatal(err)
			}
			if len(cycles) != p.NestingDepth {
				t.Fatalf("cycle count = %d, want one per nesting level = %d", len(cycles), p.NestingDepth)
			}
			for _, c := range cycles {
				if c.Len() != p.RecursionLength {
					t.Fatalf("cycle length = %d, want %d", c.Len(), p.RecursionLength)
				}
			}
			if _, err := safety.Check(spec); err != nil {
				t.Fatalf("unsafe: %v", err)
			}
		})
	}
}

func TestDeepRunReachesFullNestingDepth(t *testing.T) {
	params := DefaultSyntheticParams()
	params.NestingDepth = 6
	params.WorkflowSize = 10
	spec := Synthetic(params)
	r, err := DeepRun(spec, RunOptions{TargetSize: 2000, Rand: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, inst := range r.Instances {
		seen[inst.Module] = true
	}
	for level := 1; level <= params.NestingDepth; level++ {
		name := fmt.Sprintf("C_%d_1", level)
		if !seen[name] {
			t.Fatalf("deep run never instantiated %s; nesting depth not exercised", name)
		}
	}
	if !r.IsComplete() {
		t.Fatalf("deep run is not complete")
	}
}

func TestRandomViewModes(t *testing.T) {
	spec := PaperExample()
	rng := rand.New(rand.NewSource(11))
	white, err := RandomView(spec, ViewOptions{Name: "w", Composites: 4, Mode: WhiteBox, Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := white.IsWhiteBox(); !ok {
		t.Fatalf("white-box mode must produce a white-box view")
	}
	black, err := RandomView(spec, ViewOptions{Name: "b", Composites: 3, Mode: BlackBox, Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range black.ViewAtomicModules() {
		mat, _ := black.DepsFor(m)
		if !mat.IsFull() {
			t.Fatalf("black-box view has non-complete dependencies for %q", m)
		}
	}
	if _, err := RandomView(spec, ViewOptions{Name: "nil-rand", Composites: 2, Mode: GreyBox}); err == nil {
		t.Fatalf("RandomView must reject a nil randomness source")
	}
}

func TestRandomViewSubsetIsAlwaysProper(t *testing.T) {
	spec := BioAID()
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%16) + 1
		v, err := RandomView(spec, ViewOptions{Name: "q", Composites: count, Mode: WhiteBox, Rand: rng})
		if err != nil {
			return false
		}
		return v.CheckProper() == nil && len(v.ExpandableModules()) <= count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFigure10ExampleProperties(t *testing.T) {
	spec := Figure10Example()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	pg := prodgraph.New(spec.Grammar)
	if !pg.IsLinearRecursive() {
		t.Fatalf("Figure 10 grammar must be linear-recursive")
	}
	if pg.IsStrictlyLinearRecursive() {
		t.Fatalf("Figure 10 grammar must not be strictly linear-recursive")
	}
	if !spec.IsCoarseGrained() {
		t.Fatalf("Figure 10 grammar is coarse-grained (black-box) by construction")
	}
	if _, err := safety.Check(spec); err != nil {
		t.Fatalf("Figure 10 grammar must be safe (Lemma 2): %v", err)
	}
}

func TestClassifyProductionsOnPaperExample(t *testing.T) {
	spec := PaperExample()
	growing, terminating := classifyProductions(spec.Grammar)
	// p2 = A -> (d, B, C) keeps the A/B recursion alive; p3 = A -> (e, C) ends it.
	if len(growing["A"]) != 1 || growing["A"][0] != 2 {
		t.Fatalf("growing productions for A = %v, want [2]", growing["A"])
	}
	if len(terminating["A"]) != 1 || terminating["A"][0] != 3 {
		t.Fatalf("terminating productions for A = %v, want [3]", terminating["A"])
	}
	// p6 = D -> (f, D) is recursive, p7 = D -> (f) terminates.
	if len(growing["D"]) != 1 || growing["D"][0] != 6 {
		t.Fatalf("growing productions for D = %v, want [6]", growing["D"])
	}
	if len(terminating["D"]) != 1 || terminating["D"][0] != 7 {
		t.Fatalf("terminating productions for D = %v, want [7]", terminating["D"])
	}
}

func TestFineDepsSatisfyDefinition6(t *testing.T) {
	for in := 1; in <= 6; in++ {
		for out := 1; out <= 6; out++ {
			for salt := 0; salt < 4; salt++ {
				m := fineDeps(in, out, salt)
				mod := workflow.Module{Name: "m", In: in, Out: out}
				deps := workflow.DependencyAssignment{"m": m}
				if err := deps.ValidateFor([]workflow.Module{mod}); err != nil {
					t.Fatalf("fineDeps(%d,%d,%d) violates Definition 6: %v", in, out, salt, err)
				}
			}
		}
	}
}

func TestRandomRunRequiresRand(t *testing.T) {
	spec := PaperExample()
	if _, err := RandomRun(spec, RunOptions{TargetSize: 10}); err == nil {
		t.Fatalf("RandomRun must reject a nil randomness source")
	}
	if _, err := DeepRun(spec, RunOptions{TargetSize: 10}); err == nil {
		t.Fatalf("DeepRun must reject a nil randomness source")
	}
}
