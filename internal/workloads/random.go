package workloads

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/boolmat"
	"repro/internal/run"
	"repro/internal/view"
	"repro/internal/workflow"
)

// RunOptions controls the random derivation of a run.
type RunOptions struct {
	// TargetSize is the number of data items to aim for. The derivation keeps
	// favouring recursive productions until the run reaches this size, then
	// switches to terminating productions and completes the run.
	TargetSize int
	// Rand is the randomness source. It must not be nil.
	Rand *rand.Rand
	// Partial, when true, stops as soon as TargetSize is reached and leaves
	// the remaining composite instances unexpanded (a partial execution).
	Partial bool
	// MaxSteps bounds the number of production applications as a safety net
	// against degenerate grammars; 0 means 50*TargetSize+1000.
	MaxSteps int
}

// RandomRun derives a run of the specification by applying a random sequence
// of productions, the simulation strategy described in Section 6.1 of the
// paper ("we simulated runs by applying a random sequence of productions").
func RandomRun(spec *workflow.Specification, opts RunOptions) (*run.Run, error) {
	if opts.Rand == nil {
		return nil, fmt.Errorf("workloads: RunOptions.Rand must not be nil")
	}
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = 50*opts.TargetSize + 1000
	}
	growing, terminating := classifyProductions(spec.Grammar)

	r := run.New(spec)
	steps := 0
	for {
		frontier := r.Frontier()
		if len(frontier) == 0 {
			break
		}
		if opts.Partial && r.Size() >= opts.TargetSize {
			break
		}
		if steps >= maxSteps {
			return nil, fmt.Errorf("workloads: derivation did not terminate within %d steps", maxSteps)
		}
		instID := frontier[opts.Rand.Intn(len(frontier))]
		inst, _ := r.Instance(instID)
		var prod int
		if r.Size() < opts.TargetSize {
			prod = pickProduction(opts.Rand, growing[inst.Module], spec.Grammar.ProductionsFor(inst.Module))
		} else {
			prod = pickProduction(opts.Rand, terminating[inst.Module], spec.Grammar.ProductionsFor(inst.Module))
		}
		if _, err := r.Apply(instID, prod); err != nil {
			return nil, err
		}
		steps++
	}
	return r, nil
}

// pickProduction picks uniformly from preferred if non-empty, otherwise from
// all.
func pickProduction(rng *rand.Rand, preferred, all []int) int {
	if len(preferred) > 0 {
		return preferred[rng.Intn(len(preferred))]
	}
	return all[rng.Intn(len(all))]
}

// classifyProductions splits, for every composite module, its productions
// into "growing" ones (those whose right-hand side contains a module that can
// reach the left-hand side again, i.e. that keep a recursion alive) and
// "terminating" ones (the rest). Growing productions are used to inflate runs
// towards a target size; terminating ones are used to finish the derivation.
func classifyProductions(g *workflow.Grammar) (growing, terminating map[string][]int) {
	// reach[m][n]: n derivable from m through productions.
	reach := map[string]map[string]bool{}
	for name := range g.Modules {
		reach[name] = map[string]bool{name: true}
	}
	changed := true
	for changed {
		changed = false
		for _, p := range g.Productions {
			for from := range g.Modules {
				if !reach[from][p.LHS] {
					continue
				}
				for _, node := range p.RHS.Nodes {
					if !reach[from][node] {
						reach[from][node] = true
						changed = true
					}
				}
			}
		}
	}
	growing = map[string][]int{}
	terminating = map[string][]int{}
	for k, p := range g.Productions {
		recursive := false
		for _, node := range p.RHS.Nodes {
			if reach[node][p.LHS] {
				recursive = true
				break
			}
		}
		if recursive {
			growing[p.LHS] = append(growing[p.LHS], k+1)
		} else {
			terminating[p.LHS] = append(terminating[p.LHS], k+1)
		}
	}
	return growing, terminating
}

// DependencyMode selects how the perceived dependencies λ′ of a random view
// are generated.
type DependencyMode int

const (
	// WhiteBox uses the true induced dependencies λ* for every view-atomic
	// module (abstraction views).
	WhiteBox DependencyMode = iota
	// BlackBox uses complete dependencies for every view-atomic module
	// (the coarse-grained model used by the DRL baseline).
	BlackBox
	// GreyBox adds random false dependencies on top of the true ones for a
	// random subset of view-atomic modules (security views).
	GreyBox
)

// String names the mode.
func (m DependencyMode) String() string {
	switch m {
	case WhiteBox:
		return "white-box"
	case BlackBox:
		return "black-box"
	case GreyBox:
		return "grey-box"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ViewOptions controls the generation of a random view.
type ViewOptions struct {
	// Name is the view's identifier.
	Name string
	// Composites is the number of composite modules to keep expandable
	// (clamped to the available count). The start module is always included
	// when it is composite.
	Composites int
	// Mode selects the dependency assignment λ′.
	Mode DependencyMode
	// Rand is the randomness source. It must not be nil.
	Rand *rand.Rand
	// MaxAttempts bounds the rejection sampling used to find a safe grey-box
	// assignment; 0 means 50.
	MaxAttempts int
}

// RandomView builds a random safe view over the specification: ∆′ is grown
// from the start module so the view is always proper, and λ′ is chosen
// according to the mode. Grey-box assignments are rejection-sampled for
// safety; if no safe grey-box assignment is found the generator falls back to
// black-box and finally to white-box dependencies (which are always safe).
func RandomView(spec *workflow.Specification, opts ViewOptions) (*view.View, error) {
	if opts.Rand == nil {
		return nil, fmt.Errorf("workloads: ViewOptions.Rand must not be nil")
	}
	maxAttempts := opts.MaxAttempts
	if maxAttempts == 0 {
		maxAttempts = 50
	}
	include := randomProperSubset(spec.Grammar, opts.Rand, opts.Composites)

	def := view.Default(spec)
	full, err := def.FullAssignment()
	if err != nil {
		return nil, fmt.Errorf("workloads: specification is unsafe: %w", err)
	}

	atomicsOf := func(inc []string) []string {
		probe := &view.View{Spec: spec, Include: map[string]bool{}, Deps: nil}
		for _, m := range inc {
			probe.Include[m] = true
		}
		return probe.ViewAtomicModules()
	}
	atoms := atomicsOf(include)

	build := func(deps workflow.DependencyAssignment) (*view.View, error) {
		return view.New(opts.Name, spec, include, deps)
	}

	whiteBox := func() workflow.DependencyAssignment {
		deps := workflow.DependencyAssignment{}
		for _, m := range atoms {
			deps[m] = full[m].Clone()
		}
		return deps
	}
	blackBox := func() workflow.DependencyAssignment {
		deps := workflow.DependencyAssignment{}
		for _, m := range atoms {
			deps[m] = workflow.CompleteDeps(spec.Grammar.Modules[m])
		}
		return deps
	}

	switch opts.Mode {
	case WhiteBox:
		return build(whiteBox())
	case BlackBox:
		v, err := build(blackBox())
		if err != nil {
			return nil, err
		}
		if !v.IsSafe() {
			return nil, fmt.Errorf("workloads: black-box view over %q is unsafe: %w", spec.Grammar.Start, v.SafetyError())
		}
		return v, nil
	case GreyBox:
		for attempt := 0; attempt < maxAttempts; attempt++ {
			deps := workflow.DependencyAssignment{}
			for _, m := range atoms {
				switch opts.Rand.Intn(3) {
				case 0:
					deps[m] = full[m].Clone()
				case 1:
					deps[m] = workflow.CompleteDeps(spec.Grammar.Modules[m])
				default:
					deps[m] = addRandomDeps(full[m], opts.Rand)
				}
			}
			v, err := build(deps)
			if err != nil {
				continue
			}
			if v.IsSafe() {
				return v, nil
			}
		}
		// Fall back to a uniformly coarsened (black-box) assignment, and to
		// white-box dependencies as the last resort.
		if v, err := build(blackBox()); err == nil && v.IsSafe() {
			return v, nil
		}
		return build(whiteBox())
	default:
		return nil, fmt.Errorf("workloads: unknown dependency mode %v", opts.Mode)
	}
}

// addRandomDeps returns a copy of the matrix with a few extra (false)
// dependencies switched on, modelling the grey boxes of security views.
func addRandomDeps(m *boolmat.Matrix, rng *rand.Rand) *boolmat.Matrix {
	c := m.Clone()
	if c.Rows() == 0 || c.Cols() == 0 {
		return c
	}
	extra := 1 + rng.Intn(c.Rows()*c.Cols())
	for e := 0; e < extra; e++ {
		c.Set(rng.Intn(c.Rows()), rng.Intn(c.Cols()), true)
	}
	return c
}

// randomProperSubset grows ∆′ from the start module: each added composite
// module occurs in the right-hand side of a production of an already included
// module, so every member is derivable in the restricted grammar and the view
// is proper.
func randomProperSubset(g *workflow.Grammar, rng *rand.Rand, target int) []string {
	if !g.IsComposite(g.Start) || target <= 0 {
		return nil
	}
	included := map[string]bool{g.Start: true}
	order := []string{g.Start}
	for len(order) < target {
		// Candidate composites: occur in the RHS of a production of an
		// included module and are not yet included.
		candSet := map[string]bool{}
		for _, p := range g.Productions {
			if !included[p.LHS] {
				continue
			}
			for _, node := range p.RHS.Nodes {
				if g.IsComposite(node) && !included[node] {
					candSet[node] = true
				}
			}
		}
		if len(candSet) == 0 {
			break
		}
		cands := make([]string, 0, len(candSet))
		for m := range candSet {
			cands = append(cands, m)
		}
		sort.Strings(cands)
		pick := cands[rng.Intn(len(cands))]
		included[pick] = true
		order = append(order, pick)
	}
	return order
}
