package workloads

import (
	"fmt"

	"repro/internal/workflow"
)

// SyntheticParams are the four knobs of the synthetic workflow family of
// Section 6.5 (Figure 26). The defaults are the paper's defaults.
type SyntheticParams struct {
	// WorkflowSize is the number of module occurrences in every production's
	// right-hand side (default 40).
	WorkflowSize int
	// ModuleDegree is the number of input and output ports of every module
	// (default 4).
	ModuleDegree int
	// NestingDepth is the number of nested recursion levels (default 4).
	NestingDepth int
	// RecursionLength is the number of composite modules on each recursion
	// cycle (default 2).
	RecursionLength int
}

// DefaultSyntheticParams returns the paper's default parameter values.
func DefaultSyntheticParams() SyntheticParams {
	return SyntheticParams{WorkflowSize: 40, ModuleDegree: 4, NestingDepth: 4, RecursionLength: 2}
}

func (p SyntheticParams) normalized() SyntheticParams {
	d := DefaultSyntheticParams()
	if p.WorkflowSize < 4 {
		p.WorkflowSize = d.WorkflowSize
	}
	if p.ModuleDegree < 1 {
		p.ModuleDegree = d.ModuleDegree
	}
	if p.NestingDepth < 1 {
		p.NestingDepth = d.NestingDepth
	}
	if p.RecursionLength < 1 {
		p.RecursionLength = d.RecursionLength
	}
	return p
}

// String renders the parameters for experiment reports.
func (p SyntheticParams) String() string {
	return fmt.Sprintf("size=%d degree=%d depth=%d recursion=%d",
		p.WorkflowSize, p.ModuleDegree, p.NestingDepth, p.RecursionLength)
}

// Synthetic builds a member of the synthetic workflow family of Figure 26:
// NestingDepth levels of composite modules C_{i,1} .. C_{i,R}; the modules of
// each level form one recursion cycle of length R (C_{i,j} derives C_{i,j+1},
// and C_{i,R} derives C_{i,1}); the first module of each level derives the
// first module of the next level, producing the nested-recursion topology of
// the figure. Every composite module has two productions (one that continues
// its recursion and one that terminates it), every production's right-hand
// side is padded with shared atomic modules to WorkflowSize occurrences, and
// every module has ModuleDegree input and output ports.
//
// The resulting grammar is strictly linear-recursive (the level cycles are
// vertex-disjoint) and, because every production's source and sink modules
// are black boxes, safe for any choice of fine-grained dependencies on the
// remaining atomic modules and under black-box views.
func Synthetic(params SyntheticParams) *workflow.Specification {
	p := params.normalized()
	deg := p.ModuleDegree
	b := workflow.NewBuilder()

	// Shared pool of atomic middle modules with fine-grained dependencies.
	const poolSize = 8
	pool := make([]string, poolSize)
	for i := range pool {
		pool[i] = fmt.Sprintf("atom%d", i)
		b.Module(pool[i], deg, deg)
		b.DepsMatrix(pool[i], fineDeps(deg, deg, i+1))
	}

	name := func(level, pos int) string { return fmt.Sprintf("C_%d_%d", level, pos) }

	// Declare composite modules and their dedicated sources and sinks.
	for level := 1; level <= p.NestingDepth; level++ {
		for pos := 1; pos <= p.RecursionLength; pos++ {
			n := name(level, pos)
			b.Module(n, deg, deg)
			b.Module("src_"+n, deg, deg)
			b.Module("snk_"+n, deg, deg)
			b.BlackBox("src_"+n, "snk_"+n)
		}
	}
	b.Start(name(1, 1))

	// pad fills a mid list up to WorkflowSize-2 occurrences with pool atomics.
	pad := func(mids []string, salt int) []string {
		target := p.WorkflowSize - 2
		for len(mids) < target {
			mids = append(mids, pool[(len(mids)+salt)%poolSize])
		}
		return mids
	}

	for level := 1; level <= p.NestingDepth; level++ {
		for pos := 1; pos <= p.RecursionLength; pos++ {
			n := name(level, pos)
			nextInCycle := name(level, pos%p.RecursionLength+1)

			// Recursive production: continue the level's cycle.
			recMids := pad([]string{nextInCycle}, level+pos)
			addChainProduction(b, chainSpec{lhs: n, src: "src_" + n, snk: "snk_" + n, mids: recMids, lanes: deg})

			// Terminating production: for the first module of a level (other
			// than the last level) it opens the next nesting level; otherwise
			// it is a purely atomic body.
			var termMids []string
			if pos == 1 && level < p.NestingDepth {
				termMids = []string{name(level+1, 1)}
			}
			termMids = pad(termMids, level+pos+3)
			addChainProduction(b, chainSpec{lhs: n, src: "src_" + n, snk: "snk_" + n, mids: termMids, lanes: deg})
		}
	}

	return b.MustBuild()
}
