package workloads

import (
	"fmt"

	"repro/internal/workflow"
)

// BioAID builds the real-life workload of Section 6.1. The original BioAID
// workflow was collected from the myExperiment repository and is not
// redistributable in machine-readable form, so this is a synthetic stand-in
// that reproduces every statistic the paper reports about it and that drives
// the labeling and query costs:
//
//   - a strictly linear-recursive grammar with 112 modules, 16 of them
//     composite;
//   - 23 productions, 7 of them recursive (the paper attributes them to two
//     loop executions and four fork executions, plus one more; here they are
//     seven self-recursive composite modules, which is the same production-
//     graph shape);
//   - every production produces a simple workflow with at most 19 modules;
//   - every module has at most 4 input ports and at most 7 output ports.
//
// The structure is a pipeline: the start module S expands into eight
// processing stages; seven of the stages contain one recursive composite
// (a loop or a fork); recursive composites expand either into another round
// of themselves or into a terminating body. Middle modules carry fine-grained
// dependencies; the dedicated source and sink module of each recursive
// composite are black boxes, which keeps all alternative productions
// consistent and the specification safe (see chainSpec).
func BioAID() *workflow.Specification {
	const lanes = 2
	b := workflow.NewBuilder()

	// Start module and its stage pipeline.
	b.Module("S", 3, 4)
	b.Module("src_S", 3, lanes)
	b.Module("snk_S", lanes, 4)
	b.DepsMatrix("src_S", fineDeps(3, lanes, 1))
	b.DepsMatrix("snk_S", fineDeps(lanes, 4, 2))

	stages := make([]string, 8)
	for i := range stages {
		stages[i] = fmt.Sprintf("Stage%d", i+1)
		b.Module(stages[i], lanes, lanes)
	}

	// Recursive composites: three loops and four forks.
	recursives := []string{"LoopExtract", "LoopAlign", "LoopRefine", "ForkBlast", "ForkAnnotate", "ForkCluster", "ForkRender"}
	for _, name := range recursives {
		b.Module(name, lanes, lanes)
		b.Module("src_"+name, lanes, lanes)
		b.Module("snk_"+name, lanes, lanes)
		// Black-box source and sink keep the two alternative productions of
		// the recursive module consistent.
		b.BlackBox("src_"+name, "snk_"+name)
	}

	// S -> src_S, 4 atomics, the eight stages, snk_S.
	sAtomics := make([]string, 4)
	for i := range sAtomics {
		sAtomics[i] = fmt.Sprintf("prep%d", i+1)
		b.Module(sAtomics[i], lanes, lanes)
		b.DepsMatrix(sAtomics[i], fineDeps(lanes, lanes, i))
	}
	sMids := append(append([]string{}, sAtomics[:2]...), stages...)
	sMids = append(sMids, sAtomics[2:]...)
	b.Start("S")
	addChainProduction(b, chainSpec{lhs: "S", src: "src_S", snk: "snk_S", mids: sMids, lanes: lanes})

	// Stage_i -> src, 4 atomics, (one recursive composite for stages 1..7), snk.
	for i, stage := range stages {
		src := "src_" + stage
		snk := "snk_" + stage
		b.Module(src, lanes, lanes)
		b.Module(snk, lanes, lanes)
		b.DepsMatrix(src, fineDeps(lanes, lanes, i+3))
		b.DepsMatrix(snk, fineDeps(lanes, lanes, i+4))
		atoms := make([]string, 4)
		for j := range atoms {
			atoms[j] = fmt.Sprintf("op_%s_%d", stage, j+1)
			b.Module(atoms[j], lanes, lanes)
			b.DepsMatrix(atoms[j], fineDeps(lanes, lanes, i+j))
		}
		mids := []string{atoms[0], atoms[1]}
		if i < len(recursives) {
			mids = append(mids, recursives[i])
		}
		mids = append(mids, atoms[2], atoms[3])
		addChainProduction(b, chainSpec{lhs: stage, src: src, snk: snk, mids: mids, lanes: lanes})
	}

	// Recursive composites: one recursive and one terminating production each.
	for i, name := range recursives {
		recAtoms := []string{fmt.Sprintf("iter_%s_a", name), fmt.Sprintf("iter_%s_b", name)}
		termAtoms := []string{fmt.Sprintf("final_%s_a", name), fmt.Sprintf("final_%s_b", name)}
		for j, a := range append(append([]string{}, recAtoms...), termAtoms...) {
			b.Module(a, lanes, lanes)
			b.DepsMatrix(a, fineDeps(lanes, lanes, i+j+5))
		}
		addChainProduction(b, chainSpec{
			lhs: name, src: "src_" + name, snk: "snk_" + name,
			mids: []string{recAtoms[0], name, recAtoms[1]}, lanes: lanes,
		})
		addChainProduction(b, chainSpec{
			lhs: name, src: "src_" + name, snk: "snk_" + name,
			mids: []string{termAtoms[0], termAtoms[1]}, lanes: lanes,
		})
	}

	return b.MustBuild()
}
