package workloads

import (
	"testing"

	"repro/internal/boolmat"
	"repro/internal/prodgraph"
	"repro/internal/safety"
	"repro/internal/view"
	"repro/internal/workflow"
)

func TestPaperExampleValidatesAndIsStrictlyLinear(t *testing.T) {
	spec := PaperExample()
	if err := spec.Validate(); err != nil {
		t.Fatalf("paper example invalid: %v", err)
	}
	if spec.IsCoarseGrained() {
		t.Fatalf("paper example must be fine-grained")
	}
	pg := prodgraph.New(spec.Grammar)
	if !pg.IsLinearRecursive() || !pg.IsStrictlyLinearRecursive() {
		t.Fatalf("paper example must be strictly linear-recursive")
	}
	cycles, err := pg.Cycles()
	if err != nil {
		t.Fatal(err)
	}
	// Example 12: C(1) = {(2,2),(4,2)} (A <-> B), C(2) = {(6,2)} (D self-loop).
	if len(cycles) != 2 {
		t.Fatalf("cycle count = %d, want 2", len(cycles))
	}
	c1, c2 := cycles[0], cycles[1]
	if c1.Len() != 2 || c1.Edges[0].K != 2 || c1.Edges[0].I != 2 || c1.Edges[1].K != 4 || c1.Edges[1].I != 2 {
		t.Fatalf("C(1) = %v, want {(2,2),(4,2)}", c1.Edges)
	}
	if c2.Len() != 1 || c2.Edges[0].K != 6 || c2.Edges[0].I != 2 {
		t.Fatalf("C(2) = %v, want {(6,2)}", c2.Edges)
	}
}

func TestPaperExampleFullAssignment(t *testing.T) {
	spec := PaperExample()
	res, err := safety.Check(spec)
	if err != nil {
		t.Fatalf("paper example reported unsafe: %v", err)
	}
	upper := boolmat.FromRows([][]bool{{true, true}, {false, true}})
	diag := boolmat.Identity(2)
	antiDiag := boolmat.New(2, 2)
	antiDiag.Set(0, 1, true)
	antiDiag.Set(1, 0, true)

	want := map[string]*boolmat.Matrix{
		"D": diag,
		"E": antiDiag,
		"C": upper,
		"A": upper,
		"B": upper,
		"S": boolmat.Full(2, 2),
	}
	for name, m := range want {
		got, ok := res.Full[name]
		if !ok {
			t.Fatalf("no full assignment for %s", name)
		}
		if !got.Equal(m) {
			t.Errorf("lambda*(%s) = %v, want %v", name, got, m)
		}
	}
}

func TestPaperSecurityViewIsSafeAndGreyBox(t *testing.T) {
	spec := PaperExample()
	v, err := PaperSecurityView(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsSafe() {
		t.Fatalf("security view unsafe: %v", v.SafetyError())
	}
	grey, err := v.IsGreyBox()
	if err != nil {
		t.Fatal(err)
	}
	if !grey {
		t.Fatalf("security view must be grey-box")
	}
	atomics := v.ViewAtomicModules()
	// Example 7: lambda' needs to be defined only for a, b, c, d, e and C.
	want := []string{"C", "a", "b", "c", "d", "e"}
	if len(atomics) != len(want) {
		t.Fatalf("view-atomic modules = %v, want %v", atomics, want)
	}
	for i := range want {
		if atomics[i] != want[i] {
			t.Fatalf("view-atomic modules = %v, want %v", atomics, want)
		}
	}
	// The view's full assignment for A and S is complete (Figure 7, bottom),
	// while B keeps the same dependencies as in the default view there; with
	// our reconstruction the black-box C makes all of them complete.
	full, err := v.FullAssignment()
	if err != nil {
		t.Fatal(err)
	}
	if !full["A"].IsFull() || !full["S"].IsFull() {
		t.Fatalf("grey-box view should coarsen A and S to complete dependencies: A=%v S=%v", full["A"], full["S"])
	}
}

func TestPaperAbstractionViewIsWhiteBox(t *testing.T) {
	spec := PaperExample()
	v, err := PaperAbstractionView(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsSafe() {
		t.Fatalf("abstraction view unsafe: %v", v.SafetyError())
	}
	white, err := v.IsWhiteBox()
	if err != nil {
		t.Fatal(err)
	}
	if !white {
		t.Fatalf("abstraction view must be white-box")
	}
}

func TestDefaultViewOfPaperExample(t *testing.T) {
	spec := PaperExample()
	def := view.Default(spec)
	if !def.IsSafe() {
		t.Fatalf("default view unsafe: %v", def.SafetyError())
	}
	if len(def.ViewAtomicModules()) != 6 {
		t.Fatalf("default view atomics = %v", def.ViewAtomicModules())
	}
	white, err := def.IsWhiteBox()
	if err != nil {
		t.Fatal(err)
	}
	if !white {
		t.Fatalf("default view is white-box by definition")
	}
	start, err := def.StartDeps()
	if err != nil {
		t.Fatal(err)
	}
	if !start.IsFull() {
		t.Fatalf("lambda*(S) = %v, want complete", start)
	}
}

func TestUnsafeExampleIsUnsafe(t *testing.T) {
	g, deps, err := UnsafeExample()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := safety.FullAssignment(g, deps, safety.Options{}); err == nil {
		t.Fatalf("Figure 6 style specification must be unsafe")
	}
}

func TestPaperViewRejectsImproperSubset(t *testing.T) {
	spec := PaperExample()
	// {A, B} without S is improper: A and B are underivable once S cannot expand.
	deps := workflow.DependencyAssignment{"S": workflow.CompleteDeps(spec.Grammar.Modules["S"])}
	if _, err := view.New("bad", spec, []string{"A", "B"}, deps); err == nil {
		t.Fatalf("improper view accepted")
	}
	// A non-composite module cannot be in Delta'.
	if _, err := view.New("bad2", spec, []string{"a"}, nil); err == nil {
		t.Fatalf("non-composite module accepted in Delta'")
	}
}
