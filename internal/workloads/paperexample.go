// Package workloads provides the workflow specifications, views and run
// generators used by the tests, examples and the experiment harness: the
// paper's running example (Figures 2-5), a BioAID-like real-life workflow
// (Section 6.1), the synthetic workflow family of Figure 26, and random
// derivations and safe views.
package workloads

import (
	"fmt"

	"repro/internal/view"
	"repro/internal/workflow"
)

// PaperExample builds the running example of the paper (Figure 2): a strictly
// linear-recursive grammar with composite modules S, A, B, C, D, E and atomic
// modules a..f, with the recursions A <-> B and D -> D, and a fine-grained
// dependency assignment. The figure's exact port counts and wirings are not
// published in machine-readable form, so the concrete workflow below is a
// self-consistent reconstruction that preserves every property the paper
// states about the example: the production set p1..p8 with the same
// right-hand-side module sequences, the two production-graph cycles
// C(1) = {(2,2),(4,2)} and C(2) = {(6,2)} (Example 12), safety with a
// non-trivial full dependency assignment (Example 10), and grey-box views
// whose answers differ from the default view (Example 8).
func PaperExample() *workflow.Specification {
	b := workflow.NewBuilder().
		Module("S", 2, 2).
		Module("A", 2, 2).
		Module("B", 2, 2).
		Module("C", 2, 2).
		Module("D", 2, 2).
		Module("E", 2, 2).
		Module("a", 1, 1).
		Module("b", 1, 2).
		Module("c", 2, 1).
		Module("d", 2, 2).
		Module("e", 2, 2).
		Module("f", 2, 2).
		Start("S")

	// p1: S -> W1 = (a, b, A, C, c, d)
	w1 := workflow.NewWorkflow()
	w1.Node("a")
	w1.Node("b")
	w1.Node("A")
	w1.Node("C")
	w1.Node("c")
	w1.Node("d")
	w1.Edge("a", 0, "A", 0)
	w1.Edge("b", 0, "A", 1)
	w1.Edge("b", 1, "C", 1)
	w1.Edge("A", 0, "C", 0)
	w1.Edge("A", 1, "c", 0)
	w1.Edge("C", 0, "c", 1)
	w1.Edge("C", 1, "d", 0)
	w1.Edge("c", 0, "d", 1)
	b.Production("S", w1.Workflow())

	// p2: A -> W2 = (d, B, C)
	w2 := workflow.NewWorkflow()
	w2.Node("d")
	w2.Node("B")
	w2.Node("C")
	w2.Edge("d", 0, "B", 0)
	w2.Edge("d", 1, "B", 1)
	w2.Edge("B", 0, "C", 0)
	w2.Edge("B", 1, "C", 1)
	b.Production("A", w2.Workflow())

	// p3: A -> W3 = (e, C)
	w3 := workflow.NewWorkflow()
	w3.Node("e")
	w3.Node("C")
	w3.Edge("e", 0, "C", 0)
	w3.Edge("e", 1, "C", 1)
	b.Production("A", w3.Workflow())

	// p4: B -> W4 = (e, A)
	w4 := workflow.NewWorkflow()
	w4.Node("e")
	w4.Node("A")
	w4.Edge("e", 0, "A", 0)
	w4.Edge("e", 1, "A", 1)
	b.Production("B", w4.Workflow())

	// p5: C -> W5 = (b, D, E, c)
	w5 := workflow.NewWorkflow()
	w5.Node("b")
	w5.Node("D")
	w5.Node("E")
	w5.Node("c")
	w5.Edge("b", 0, "D", 1)
	w5.Edge("b", 1, "E", 0)
	w5.Edge("D", 0, "E", 1)
	w5.Edge("D", 1, "c", 0)
	w5.Edge("E", 0, "c", 1)
	b.Production("C", w5.Workflow())

	// p6: D -> W6 = (f, D)
	w6 := workflow.NewWorkflow()
	w6.Node("f")
	w6.Node("D")
	w6.Edge("f", 0, "D", 0)
	w6.Edge("f", 1, "D", 1)
	b.Production("D", w6.Workflow())

	// p7: D -> W7 = (f)
	w7 := workflow.NewWorkflow()
	w7.Node("f")
	b.Production("D", w7.Workflow())

	// p8: E -> W8 = (a, f)
	w8 := workflow.NewWorkflow()
	w8.Node("a")
	w8.Node("f")
	w8.Edge("a", 0, "f", 1)
	b.Production("E", w8.Workflow())

	// Fine-grained dependency assignment for the atomic modules.
	b.Deps("a", [2]int{0, 0})
	b.Deps("b", [2]int{0, 0}, [2]int{0, 1})
	b.Deps("c", [2]int{0, 0}, [2]int{1, 0})
	b.Deps("d", [2]int{0, 0}, [2]int{1, 1})
	b.Deps("e", [2]int{0, 0}, [2]int{1, 1})
	b.Deps("f", [2]int{0, 0}, [2]int{1, 1})

	return b.MustBuild()
}

// PaperSecurityView builds the grey-box view U2 = (∆′, λ′) of Example 7:
// only S, A and B remain expandable, C becomes an atomic module with
// black-box dependencies (hiding its internal structure), and the perceived
// dependencies of e are coarsened, so the view's answers differ from the
// default view's (Example 8).
func PaperSecurityView(spec *workflow.Specification) (*view.View, error) {
	deps := workflow.DependencyAssignment{}
	for _, name := range []string{"a", "b", "c", "d"} {
		deps[name] = spec.Deps[name].Clone()
	}
	deps["e"] = workflow.CompleteDeps(spec.Grammar.Modules["e"])
	deps["C"] = workflow.CompleteDeps(spec.Grammar.Modules["C"])
	return view.New("security", spec, []string{"S", "A", "B"}, deps)
}

// PaperAbstractionView builds a white-box abstraction view over the running
// example: the same restriction ∆′ = {S, A, B} as the security view, but the
// perceived dependencies of every view-atomic module are the true induced
// ones, so reachability answers agree with the default view on all visible
// data.
func PaperAbstractionView(spec *workflow.Specification) (*view.View, error) {
	def := view.Default(spec)
	full, err := def.FullAssignment()
	if err != nil {
		return nil, err
	}
	deps := workflow.DependencyAssignment{}
	for _, name := range []string{"a", "b", "c", "d", "e", "C"} {
		deps[name] = full[name].Clone()
	}
	return view.New("abstraction", spec, []string{"S", "A", "B"}, deps)
}

// UnsafeExample builds a specification in the spirit of Figure 6: the start
// module S has two productions S -> (a) and S -> (b) whose atomic modules
// induce different dependencies between S's inputs and outputs (a is
// black-box, b is diagonal), so the specification is unsafe and no dynamic
// labeling scheme exists for it (Example 9 / Theorem 1). As library code it
// propagates a grammar-construction failure instead of panicking.
func UnsafeExample() (*workflow.Grammar, workflow.DependencyAssignment, error) {
	b := workflow.NewBuilder().
		Module("S", 2, 2).
		Module("a", 2, 2).
		Module("b", 2, 2).
		Start("S")
	wa := workflow.NewWorkflow()
	wa.Node("a")
	b.Production("S", wa.Workflow())
	wb := workflow.NewWorkflow()
	wb.Node("b")
	b.Production("S", wb.Workflow())
	b.BlackBox("a")
	b.Deps("b", [2]int{0, 0}, [2]int{1, 1})
	g, err := b.Grammar()
	if err != nil {
		return nil, nil, fmt.Errorf("workloads: building the unsafe example grammar: %w", err)
	}
	deps := workflow.DependencyAssignment{}
	deps["a"] = workflow.CompleteDeps(g.Modules["a"])
	bm := workflow.CompleteDeps(g.Modules["b"])
	bm.Set(0, 1, false)
	bm.Set(1, 0, false)
	deps["b"] = bm
	return g, deps, nil
}
