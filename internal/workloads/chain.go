package workloads

import (
	"fmt"

	"repro/internal/boolmat"
	"repro/internal/workflow"
)

// chainSpec describes one "chain production" used by the BioAID-like and
// synthetic workload generators: a dedicated source module, a sequence of
// middle modules wired lane-by-lane, and a dedicated sink module.
//
//	src.out[p]   -> mid[0].in[p]
//	mid[t].out[p]-> mid[t+1].in[p]
//	mid[k].out[p]-> snk.in[p]
//
// The source owns every initial input and the sink owns every final output,
// so the right-hand side has a single source and a single sink (the shape
// Definition 8 relies on). When the source and sink have black-box
// dependencies, the induced dependency matrix of the left-hand side is
// complete regardless of the middle modules, which is how the generators
// keep composite modules with several alternative productions consistent
// (and therefore the whole specification safe) while still using genuinely
// fine-grained dependencies in the middle.
type chainSpec struct {
	lhs   string
	src   string
	snk   string
	mids  []string
	lanes int // number of wiring lanes = src outputs = mid ports = snk inputs
}

// addChainProduction declares the production on the builder. All referenced
// modules must already be declared with compatible port counts: src must have
// exactly `lanes` outputs, every mid `lanes` inputs and `lanes` outputs, and
// snk `lanes` inputs.
func addChainProduction(b *workflow.Builder, c chainSpec) {
	wb := workflow.NewWorkflow()
	wb.Node(c.src, "src")
	prev := "src"
	for i, m := range c.mids {
		label := fmt.Sprintf("mid%d", i)
		wb.Node(m, label)
		for p := 0; p < c.lanes; p++ {
			wb.Edge(prev, p, label, p)
		}
		prev = label
	}
	wb.Node(c.snk, "snk")
	for p := 0; p < c.lanes; p++ {
		wb.Edge(prev, p, "snk", p)
	}
	b.Production(c.lhs, wb.Workflow())
}

// fineDeps builds a deterministic fine-grained (generally incomplete)
// dependency matrix for a module with the given port counts: every input
// contributes to at least one output and every output depends on at least one
// input (Definition 6), with the exact pattern varied by salt so different
// modules get different dependencies.
func fineDeps(in, out, salt int) *boolmat.Matrix {
	m := boolmat.New(in, out)
	if in == 0 || out == 0 {
		return m
	}
	for i := 0; i < in; i++ {
		m.Set(i, (i+salt)%out, true)
	}
	for o := 0; o < out; o++ {
		m.Set((o+salt)%in, o, true)
	}
	// A couple of extra deterministic dependencies for variety on larger
	// modules, still leaving the matrix incomplete whenever possible.
	if in > 1 && out > 1 {
		m.Set(salt%in, (salt+1)%out, true)
	}
	return m
}
