package workloads

import (
	"math/rand"
	"testing"

	"repro/internal/workflow"
)

type detCase struct {
	spec    *workflow.Specification
	target  int
	partial bool
}

type detRun struct {
	items, ports, instances int
	steps                   [][2]int
}

// TestRandomRunSeedDeterminism pins the reproducibility contract the
// differential suites rely on: the same seed derives the identical run —
// same step sequence, same instances, same items — so a failure reported
// against a seed can be replayed bit-for-bit in CI.
func TestRandomRunSeedDeterminism(t *testing.T) {
	cases := map[string]detCase{
		"paper":   {spec: PaperExample(), target: 200},
		"bioaid":  {spec: BioAID(), target: 400},
		"partial": {spec: BioAID(), target: 300, partial: true},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			derive := func(seed int64) detRun {
				r, err := RandomRun(tc.spec, RunOptions{
					TargetSize: tc.target,
					Rand:       rand.New(rand.NewSource(seed)),
					Partial:    tc.partial,
				})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				d := detRun{items: len(r.Items), ports: len(r.Ports), instances: len(r.Instances)}
				for _, st := range r.Steps {
					d.steps = append(d.steps, [2]int{st.Instance, st.Prod})
				}
				return d
			}
			a, b := derive(42), derive(42)
			if a.items != b.items || a.ports != b.ports || a.instances != b.instances || len(a.steps) != len(b.steps) {
				t.Fatalf("same seed produced different shapes: %+v vs %+v", a, b)
			}
			for i := range a.steps {
				if a.steps[i] != b.steps[i] {
					t.Fatalf("same seed diverged at step %d: %v vs %v", i+1, a.steps[i], b.steps[i])
				}
			}
			c := derive(43)
			if sameSteps(a.steps, c.steps) {
				t.Fatalf("different seeds produced the identical %d-step derivation", len(a.steps))
			}
		})
	}
}

func sameSteps(a, b [][2]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRandomViewSeedDeterminism: the same seed builds the same view — same
// expandable set and bitwise-equal dependency matrices.
func TestRandomViewSeedDeterminism(t *testing.T) {
	spec := BioAID()
	build := func(seed int64) (include map[string]bool, deps map[string][][]bool) {
		v, err := RandomView(spec, ViewOptions{
			Name: "det", Composites: 8, Mode: GreyBox, Rand: rand.New(rand.NewSource(seed)),
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		include = map[string]bool{}
		for m, ok := range v.Include {
			include[m] = ok
		}
		deps = map[string][][]bool{}
		for m, mat := range v.Deps {
			rows := make([][]bool, mat.Rows())
			for r := range rows {
				rows[r] = make([]bool, mat.Cols())
				for c := range rows[r] {
					rows[r][c] = mat.Get(r, c)
				}
			}
			deps[m] = rows
		}
		return include, deps
	}
	incA, depsA := build(42)
	incB, depsB := build(42)
	if len(incA) != len(incB) || len(depsA) != len(depsB) {
		t.Fatalf("same seed produced different view shapes")
	}
	for m, ok := range incA {
		if incB[m] != ok {
			t.Fatalf("same seed disagreed on module %q inclusion", m)
		}
	}
	for m, rowsA := range depsA {
		rowsB, ok := depsB[m]
		if !ok || len(rowsA) != len(rowsB) {
			t.Fatalf("same seed disagreed on module %q dependencies", m)
		}
		for r := range rowsA {
			for c := range rowsA[r] {
				if rowsA[r][c] != rowsB[r][c] {
					t.Fatalf("same seed disagreed on %q dep (%d,%d)", m, r, c)
				}
			}
		}
	}
}
