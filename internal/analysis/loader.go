package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: what a driver hands to the
// analyzers as a Pass.
type Package struct {
	PkgPath string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Loader loads and type-checks packages entirely from source, with no
// network, no module cache and no external processes — the conditions the
// repo's development container actually provides. Import paths resolve
// in three steps:
//
//   - paths equal to or below Module map into Dir (module layout);
//   - with Module == "", any path maps to Dir/<path> if that directory
//     exists (GOPATH-style layout, used for analyzer test fixtures);
//   - everything else resolves into GOROOT/src (the standard library,
//     including its vendored golang.org/x dependencies).
//
// Dependency packages are type-checked without AST retention or types.Info;
// only packages loaded through Load keep their syntax for analysis.
type Loader struct {
	Fset   *token.FileSet
	Module string // module path of Dir; "" selects GOPATH-style resolution
	Dir    string // root directory the Module (or fixture tree) lives in

	ctx  build.Context
	pkgs map[string]*loadEntry
}

type loadEntry struct {
	pkg      *Package
	err      error
	building bool
}

// NewLoader returns a loader rooted at dir. module is the import path the
// directory answers to ("" for a GOPATH-style fixture root).
func NewLoader(module, dir string) *Loader {
	ctx := build.Default
	// Without cgo the standard library selects its pure-Go fallbacks, which
	// is exactly what source-level type-checking can digest.
	ctx.CgoEnabled = false
	return &Loader{
		Fset:   token.NewFileSet(),
		Module: module,
		Dir:    dir,
		ctx:    ctx,
		pkgs:   map[string]*loadEntry{},
	}
}

// Load loads the package at the given import path with full syntax and type
// information, ready to be analyzed.
func (l *Loader) Load(path string) (*Package, error) {
	return l.load(path, true)
}

// Import implements types.Importer for the type-checker's benefit:
// dependencies keep types only.
func (l *Loader) Import(path string) (*types.Package, error) {
	p, err := l.load(path, false)
	if err != nil {
		return nil, err
	}
	return p.Types, nil
}

func (l *Loader) load(path string, target bool) (*Package, error) {
	if path == "unsafe" {
		return &Package{PkgPath: path, Types: types.Unsafe}, nil
	}
	if e, ok := l.pkgs[path]; ok {
		if e.building {
			return nil, fmt.Errorf("analysis: import cycle through %q", path)
		}
		if target && e.err == nil && e.pkg.Info == nil {
			return nil, fmt.Errorf("analysis: %q was loaded without syntax", path)
		}
		return e.pkg, e.err
	}
	e := &loadEntry{building: true}
	l.pkgs[path] = e
	e.pkg, e.err = l.check(path)
	e.building = false
	return e.pkg, e.err
}

func (l *Loader) dirFor(path string) (string, error) {
	if l.Module != "" {
		if path == l.Module {
			return l.Dir, nil
		}
		if rest, ok := strings.CutPrefix(path, l.Module+"/"); ok {
			return filepath.Join(l.Dir, filepath.FromSlash(rest)), nil
		}
	} else {
		dir := filepath.Join(l.Dir, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, nil
		}
	}
	goroot := l.ctx.GOROOT
	for _, dir := range []string{
		filepath.Join(goroot, "src", filepath.FromSlash(path)),
		filepath.Join(goroot, "src", "vendor", filepath.FromSlash(path)),
	} {
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, nil
		}
	}
	return "", fmt.Errorf("analysis: cannot resolve import %q", path)
}

func (l *Loader) check(path string) (*Package, error) {
	dir, err := l.dirFor(path)
	if err != nil {
		return nil, err
	}
	// Packages under the loader's root keep their syntax and resolution info
	// so they can serve as analysis targets no matter whether they were first
	// reached as a target or as a dependency of one — a package must be
	// type-checked exactly once, or two targets could see two incompatible
	// instances of a shared dependency. Standard-library packages only
	// contribute types.
	target := strings.HasPrefix(dir, l.Dir+string(filepath.Separator)) || dir == l.Dir
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: scanning %s: %w", dir, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}

	var info *types.Info
	if target {
		info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
	}
	var firstErr error
	cfg := types.Config{
		Importer:    l,
		Sizes:       types.SizesFor("gc", l.ctx.GOARCH),
		FakeImportC: true,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := cfg.Check(path, l.Fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, firstErr)
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	p := &Package{PkgPath: path, Types: tpkg}
	if target {
		p.Files = files
		p.Info = info
	}
	return p, nil
}

// Targets expands command-line package patterns against the loader's root.
// Supported forms: "./..." (every package under the root), "dir/..."
// (every package under dir) and plain relative directories. Directories
// named testdata, hidden directories and _-prefixed directories are pruned,
// exactly like the go tool.
func (l *Loader) Targets(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(dir string) error {
		rel, err := filepath.Rel(l.Dir, dir)
		if err != nil {
			return err
		}
		var path string
		switch {
		case rel == ".":
			path = l.Module
		case l.Module != "":
			path = l.Module + "/" + filepath.ToSlash(rel)
		default:
			path = filepath.ToSlash(rel)
		}
		if path == "" || seen[path] {
			return nil
		}
		seen[path] = true
		out = append(out, path)
		return nil
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" || pat == "." {
				pat = "."
			}
		}
		root := filepath.Join(l.Dir, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if !recursive {
			if hasGoFiles(root) {
				if err := add(root); err != nil {
					return nil, err
				}
				continue
			}
			return nil, fmt.Errorf("analysis: no Go files in %s", root)
		}
		err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				return add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if name := e.Name(); !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
			return true
		}
	}
	return false
}
