// Package closecheck flags discarded Close and Sync errors on files that
// were opened for writing. On a written file, the operating system may
// surface a delayed write failure at close time — a discarded f.Close() (or
// f.Sync()) turns data loss into silent success, which is how "the export
// looked fine until the disk filled up" bugs are born. PR 6 made the fvl and
// CLI paths propagate Close errors; this analyzer keeps it that way.
//
// The analyzer tracks variables bound from writable opens — os.Create,
// os.CreateTemp, writable os.OpenFile, and Create/Append methods returning a
// durable.FS File — and flags any statement-position Close()/Sync() call on
// them, whose error result is necessarily discarded. Two idioms stay legal:
// a discarded f.Close() immediately before `return err` is failure-path
// cleanup dominated by the error already being returned; and once the
// function checks an explicit f.Close() error somewhere (the success path),
// its remaining discarded closes — error-path cleanup or a defer backstop
// whose second close only reports ErrClosed — are not flagged.
package closecheck

import (
	"go/ast"
	"go/constant"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the closecheck check.
var Analyzer = &analysis.Analyzer{
	Name: "closecheck",
	Doc: "flags discarded Close/Sync error results on files opened for writing: delayed write errors " +
		"surface at Close/Sync, discarding them hides data loss",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		analysis.EachFunc(file, func(fd *ast.FuncDecl) {
			if fd.Body == nil {
				return
			}
			checkFunc(pass, fd)
		})
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	written := map[*types.Var]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) == 0 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !opensForWriting(pass.TypesInfo, call) {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
				written[v] = true
			} else if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
				written[v] = true
			}
		}
		return true
	})
	if len(written) == 0 {
		return
	}

	type site struct {
		call   *ast.CallExpr
		v      *types.Var
		method string
	}
	var discarded []site
	checkedClose := map[*types.Var]bool{}

	classify := func(stmt, next ast.Stmt) {
		var call *ast.CallExpr
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			call, _ = s.X.(*ast.CallExpr)
		case *ast.DeferStmt:
			call = s.Call
		case *ast.GoStmt:
			call = s.Call
		}
		if call == nil {
			return
		}
		if v, method, ok := closeOrSyncOn(pass.TypesInfo, call, written); ok {
			if method == "Close" && returnsError(pass.TypesInfo, next) {
				// f.Close() immediately before returning an error value: the
				// error already being returned takes precedence, the close is
				// resource cleanup on the failure path.
				return
			}
			discarded = append(discarded, site{call: call, v: v, method: method})
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		for i, stmt := range stmtsOf(n) {
			var next ast.Stmt
			if i+1 < len(stmtsOf(n)) {
				next = stmtsOf(n)[i+1]
			}
			classify(stmt, next)
		}
		// Any Close call that is NOT in statement position consumes its
		// result: record it as checked.
		if call, ok := n.(*ast.CallExpr); ok {
			if v, method, ok := closeOrSyncOn(pass.TypesInfo, call, written); ok && method == "Close" && !inStatementPosition(fd, call) {
				checkedClose[v] = true
			}
		}
		return true
	})

	for _, s := range discarded {
		if s.method == "Close" && checkedClose[s.v] {
			// The success path checks an explicit f.Close(); the remaining
			// discarded closes are error-path cleanup (an earlier error takes
			// precedence) or a defer backstop. Both are the sanctioned idiom.
			continue
		}
		pass.Reportf(s.call.Pos(), "%s error of %s is discarded on a file opened for writing: delayed write failures "+
			"surface here; check the error (an additional defer %s.Close() backstop is fine once the success path checks Close)",
			s.method, s.v.Name(), s.v.Name())
	}
}

// stmtsOf returns the statement list a node carries, if any — the positions
// where a discarded-result call can appear next to its sibling statements.
func stmtsOf(n ast.Node) []ast.Stmt {
	switch s := n.(type) {
	case *ast.BlockStmt:
		return s.List
	case *ast.CaseClause:
		return s.Body
	case *ast.CommClause:
		return s.Body
	}
	return nil
}

// returnsError reports whether the statement is a return carrying a non-nil
// error value (so a preceding discarded Close is failure-path cleanup
// dominated by that error).
func returnsError(info *types.Info, s ast.Stmt) bool {
	ret, ok := s.(*ast.ReturnStmt)
	if !ok {
		return false
	}
	for _, r := range ret.Results {
		if analysis.ImplementsError(info.TypeOf(r)) {
			return true
		}
	}
	return false
}

// inStatementPosition reports whether the call is directly the expression of
// an ExprStmt/DeferStmt/GoStmt in fd (its result is discarded).
func inStatementPosition(fd *ast.FuncDecl, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if s.X == call {
				found = true
			}
		case *ast.DeferStmt:
			if s.Call == call {
				found = true
			}
		case *ast.GoStmt:
			if s.Call == call {
				found = true
			}
		}
		return !found
	})
	return found
}

// closeOrSyncOn matches a call of the form v.Close() or v.Sync() where v is
// one of the tracked written-file variables.
func closeOrSyncOn(info *types.Info, call *ast.CallExpr, written map[*types.Var]bool) (*types.Var, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Close" && sel.Sel.Name != "Sync") || len(call.Args) != 0 {
		return nil, "", false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil, "", false
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || !written[v] {
		return nil, "", false
	}
	return v, sel.Sel.Name, true
}

// opensForWriting reports whether the call opens a file for writing.
func opensForWriting(info *types.Info, call *ast.CallExpr) bool {
	obj := analysis.Callee(info, call)
	switch {
	case analysis.IsPkgFunc(obj, "os", "Create"), analysis.IsPkgFunc(obj, "os", "CreateTemp"):
		return true
	case analysis.IsPkgFunc(obj, "os", "OpenFile"):
		if len(call.Args) >= 2 {
			if tv, ok := info.Types[call.Args[1]]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
				if v, ok := constant.Int64Val(tv.Value); ok {
					return v&3 != 0 // O_WRONLY | O_RDWR
				}
			}
		}
		return true
	case obj != nil && (obj.Name() == "Create" || obj.Name() == "Append"):
		// The durable.FS boundary: Create/Append methods handing out a File
		// whose Sync/Close results carry the durability guarantee.
		if fn, ok := obj.(*types.Func); ok {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Results().Len() == 2 {
				return analysis.IsNamed(sig.Results().At(0).Type(), "repro/internal/durable", "File")
			}
		}
	}
	return false
}
