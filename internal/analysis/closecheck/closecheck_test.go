package closecheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/closecheck"
)

func TestClosecheck(t *testing.T) {
	analysistest.Run(t, "testdata", closecheck.Analyzer, "repro/internal/writer")
}
