// Package writer exercises the closecheck fixture: Close/Sync errors on
// files opened for writing carry delayed write failures and must be checked.
package writer

import "os"

func bad(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	f.Close() // want `Close error of f is discarded on a file opened for writing`
	return nil
}

func badSync(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	f.Sync() // want `Sync error of f is discarded on a file opened for writing`
	return f.Close()
}

func deferOnly(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `Close error of f is discarded on a file opened for writing`
	_, err = f.Write(data)
	return err
}

// good checks Close on the success path; the defer is the sanctioned
// backstop whose second close only reports ErrClosed.
func good(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(data); err != nil {
		return err
	}
	return f.Close()
}

// errorPath discards a Close immediately before returning the write error,
// which dominates it — the failure-path cleanup idiom.
func errorPath(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readOnly files carry no pending writes; their closes are out of scope.
func readOnly(path string) {
	f, _ := os.Open(path)
	f.Close()
}
