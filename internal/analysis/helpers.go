package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// Callee resolves the object a call expression invokes: a *types.Func for
// ordinary functions, methods and imported functions, a *types.Builtin for
// builtins, nil for indirect calls through function values.
func Callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		return info.Uses[fun.Sel] // package-qualified call
	}
	return nil
}

// IsPkgFunc reports whether obj is the function (or method-less package
// symbol) pkgPath.name.
func IsPkgFunc(obj types.Object, pkgPath, name string) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// Named peels pointers and aliases off a type and returns the named type
// underneath, or nil.
func Named(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// IsNamed reports whether t (possibly behind a pointer) is the named type
// pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	n := Named(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// StringLit returns the value of a string literal expression, or "" and
// false when the expression is not a constant string literal.
func StringLit(e ast.Expr) (string, bool) {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind.String() != "STRING" {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// ImplementsError reports whether t implements the error interface.
func ImplementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorInterface) || types.Implements(types.NewPointer(t), errorInterface)
}

var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// EachFunc calls fn for every top-level function declaration of the file —
// the granularity most analyzers scope their walks to.
func EachFunc(file *ast.File, fn func(decl *ast.FuncDecl)) {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			fn(fd)
		}
	}
}
