package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestLoaderTargets checks pattern expansion against the real module: the
// repo's packages are discovered, fixture trees under testdata are not.
func TestLoaderTargets(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader("repro", root)
	targets, err := l.Targets([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, p := range targets {
		seen[p] = true
		if strings.Contains(p, "testdata") {
			t.Errorf("Targets yielded fixture package %s; testdata must be pruned", p)
		}
	}
	for _, want := range []string{"repro/fvl", "repro/internal/core", "repro/cmd/fvlvet"} {
		if !seen[want] {
			t.Errorf("Targets missed %s (got %d targets)", want, len(targets))
		}
	}
}

// TestLoaderSingleWorld checks the property every cross-package analyzer
// depends on: one import path resolves to exactly one types.Package, no
// matter how the loader reaches it, so type identity holds across packages.
func TestLoaderSingleWorld(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader("repro", root)
	core, err := l.Load("repro/internal/core")
	if err != nil {
		t.Fatal(err)
	}
	if core.Info == nil || len(core.Files) == 0 {
		t.Fatalf("target package loaded without syntax or type info")
	}
	again, err := l.Load("repro/internal/core")
	if err != nil {
		t.Fatal(err)
	}
	if core.Types != again.Types {
		t.Errorf("loading repro/internal/core twice produced distinct types.Package instances")
	}
	boolmat, err := l.Load("repro/internal/boolmat")
	if err != nil {
		t.Fatal(err)
	}
	for _, imp := range core.Types.Imports() {
		if imp.Path() == "repro/internal/boolmat" && imp != boolmat.Types {
			t.Errorf("core's imported boolmat is a different instance than the directly loaded one")
		}
	}
}
