// Package live impersonates repro/internal/live for the pubatomic fixture:
// a producer session publishing an immutable prefix to lock-free readers.
package live

import "sync/atomic"

// Prefix is published through atomic.Pointer fields below, so the analyzer
// treats it as frozen.
type Prefix struct {
	epoch  int
	labels []int
	index  map[int]int
}

// Session is the single producer; labels and index are its mutable state.
type Session struct {
	cur    atomic.Pointer[Prefix]
	bad    atomic.Pointer[Prefix]
	raw    atomic.Pointer[Prefix]
	labels []int
	index  map[int]int
}

// publish is the one sanctioned store site of cur: capacity-capped slice,
// no maps, one function.
func (s *Session) publish(n int) {
	s.cur.Store(&Prefix{epoch: n, labels: s.labels[:n:n]})
}

func (s *Session) storeOne(n int) {
	s.bad.Store(&Prefix{epoch: n, labels: s.labels[:n]}) // want `atomic field bad is stored from 2 functions` `published slice s\.labels\[\.\.\.\] is not capacity-capped`
}

func (s *Session) storeTwo(p *Prefix) {
	s.bad.Store(p) // want `atomic field bad is stored from 2 functions`
}

func (s *Session) storeRaw(n int) {
	s.raw.Store(&Prefix{epoch: n, labels: s.labels, index: s.index}) // want `published slice s\.labels aliases producer state by reference` `published map s\.index aliases producer state`
}

func (s *Session) patch(p *Prefix) {
	p.epoch++ // want `write to Prefix, a type published through an atomic\.Pointer`
}

// newPrefix builds the value before it escapes to a Store, the reviewed
// builder exception.
//
//fvlvet:prepublish
func newPrefix(n int) *Prefix {
	p := &Prefix{}
	p.epoch = n
	return p
}
