// Package pubatomic enforces the PR 5 publication protocol of the live and
// durable session layers: state crosses from the single producer to the
// lock-free readers through exactly one atomic.Pointer store, and what is
// published is immutable and must not alias state the producer keeps
// mutating.
//
// Three concrete rules, checked in packages under internal/live,
// internal/durable and internal/shard (whose per-shard epochs publish through
// the same atomic.Pointer discipline):
//
//  1. Single publish path — all Store/Swap/CompareAndSwap calls on one
//     atomic.Pointer field must live in a single function. A second store
//     site is a second publication protocol, and the epoch reasoning of the
//     session tests no longer covers it.
//
//  2. No aliasing at the publish site — a composite literal handed to Store
//     must not carry a 2-index slice (the producer's next append would be
//     visible through the shared backing array; use a full slice expression
//     s[:n:n] or a copy) or a bare field reference to map/slice producer
//     state.
//
//  3. Published types stay frozen — any type that appears as the argument of
//     an atomic.Pointer[T] field in the package must not have its fields
//     written anywhere (outside functions marked //fvlvet:prepublish, for
//     builders that provably run before the value escapes to Store).
package pubatomic

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the pubatomic check.
var Analyzer = &analysis.Analyzer{
	Name: "pubatomic",
	Doc: "enforces the epoch publication protocol: one atomic.Pointer store site per field, " +
		"no aliasing of mutable producer state at the publish site, and no writes to published types",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !strings.Contains(pass.PkgPath, "internal/live") &&
		!strings.Contains(pass.PkgPath, "internal/durable") &&
		!strings.Contains(pass.PkgPath, "internal/shard") {
		return nil
	}

	published := publishedTypes(pass.Pkg)

	type storeSite struct {
		fn  string
		pos token.Pos
	}
	stores := map[*types.Var][]storeSite{}

	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		analysis.EachFunc(file, func(fd *ast.FuncDecl) {
			if fd.Body == nil {
				return
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				field, method := atomicPointerCall(pass.TypesInfo, call)
				if field == nil {
					return true
				}
				switch method {
				case "Store", "Swap", "CompareAndSwap":
					stores[field] = append(stores[field], storeSite{fn: funcDisplayName(fd), pos: call.Pos()})
					if arg := storedValue(call, method); arg != nil {
						checkAliasing(pass, arg)
					}
				}
				return true
			})

			// Rule 3: published types are frozen everywhere except marked
			// pre-publish builders.
			if analysis.HasDirective(fd.Doc, "fvlvet:prepublish") {
				return
			}
			analysis.EachWrite(pass.TypesInfo, fd.Body, func(w analysis.Write) {
				t, ok := analysis.MatchWrite(pass.TypesInfo, w.Lhs, func(n *types.Named) bool {
					return published[n.Obj()]
				})
				if !ok {
					return
				}
				name := analysis.Named(pass.TypesInfo.TypeOf(t.Base)).Obj().Name()
				pass.Reportf(w.Pos, "write to %s, a type published through an atomic.Pointer: published values are immutable; "+
					"build a fresh value and publish it, or mark a pre-Store builder with //fvlvet:prepublish", name)
			})
		})
	}

	// Rule 1: one publish path per field.
	for field, sites := range stores {
		fns := map[string]bool{}
		for _, s := range sites {
			fns[s.fn] = true
		}
		if len(fns) <= 1 {
			continue
		}
		names := make([]string, 0, len(fns))
		for fn := range fns {
			names = append(names, fn)
		}
		sort.Strings(names)
		for _, s := range sites {
			pass.Reportf(s.pos, "atomic field %s is stored from %d functions (%s): the epoch protocol requires a single publish path",
				field.Name(), len(names), strings.Join(names, ", "))
		}
	}
	return nil
}

// atomicPointerCall reports whether call invokes a method of a
// sync/atomic.Pointer[T] struct field, returning the field and method name.
func atomicPointerCall(info *types.Info, call *ast.CallExpr) (*types.Var, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	recv := ast.Unparen(sel.X)
	if !analysis.IsNamed(info.TypeOf(recv), "sync/atomic", "Pointer") {
		return nil, ""
	}
	fieldSel, ok := recv.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	s, ok := info.Selections[fieldSel]
	if !ok {
		return nil, ""
	}
	field, ok := s.Obj().(*types.Var)
	if !ok || !field.IsField() {
		return nil, ""
	}
	return field, sel.Sel.Name
}

func storedValue(call *ast.CallExpr, method string) ast.Expr {
	switch method {
	case "Store", "Swap":
		if len(call.Args) == 1 {
			return call.Args[0]
		}
	case "CompareAndSwap":
		if len(call.Args) == 2 {
			return call.Args[1]
		}
	}
	return nil
}

// checkAliasing inspects the value being published. When it is a composite
// literal (the common &Prefix{...} shape), each reference-typed element must
// be severed from producer state.
func checkAliasing(pass *analysis.Pass, arg ast.Expr) {
	lit := compositeLit(arg)
	if lit == nil {
		return
	}
	for _, elt := range lit.Elts {
		value := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			value = kv.Value
		}
		t := pass.TypesInfo.TypeOf(value)
		if t == nil {
			continue
		}
		switch types.Unalias(t).Underlying().(type) {
		case *types.Slice:
			switch v := ast.Unparen(value).(type) {
			case *ast.SliceExpr:
				if !v.Slice3 {
					pass.Reportf(value.Pos(), "published slice %s is not capacity-capped: a later append through the producer's "+
						"alias would be visible to readers; use a full slice expression s[:n:n] or a copy", exprString(value))
				}
			case *ast.SelectorExpr, *ast.Ident:
				if isFieldRef(pass.TypesInfo, v) {
					pass.Reportf(value.Pos(), "published slice %s aliases producer state by reference; "+
						"publish a capacity-capped slice (s[:n:n]) or a copy", exprString(value))
				}
			}
		case *types.Map:
			if v := ast.Unparen(value); isFieldRef(pass.TypesInfo, v) {
				pass.Reportf(value.Pos(), "published map %s aliases producer state: maps cannot be capped; publish a copy", exprString(value))
			}
		}
	}
}

func compositeLit(arg ast.Expr) *ast.CompositeLit {
	switch v := ast.Unparen(arg).(type) {
	case *ast.CompositeLit:
		return v
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			if lit, ok := ast.Unparen(v.X).(*ast.CompositeLit); ok {
				return lit
			}
		}
	}
	return nil
}

func isFieldRef(info *types.Info, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok {
		return false
	}
	v, ok := s.Obj().(*types.Var)
	return ok && v.IsField()
}

// publishedTypes collects the named struct types that appear as type
// arguments of atomic.Pointer fields declared in the package.
func publishedTypes(pkg *types.Package) map[types.Object]bool {
	out := map[types.Object]bool{}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			ft := types.Unalias(st.Field(i).Type())
			named, ok := ft.(*types.Named)
			if !ok || !analysis.IsNamed(named, "sync/atomic", "Pointer") {
				continue
			}
			args := named.TypeArgs()
			if args == nil || args.Len() != 1 {
				continue
			}
			if elem := analysis.Named(args.At(0)); elem != nil && elem.Obj().Pkg() == pkg {
				out[elem.Obj()] = true
			}
		}
	}
	return out
}

func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return fmt.Sprintf("(%s).%s", recvTypeString(fd.Recv.List[0].Type), fd.Name.Name)
}

func recvTypeString(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return "*" + recvTypeString(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr:
		return recvTypeString(t.X)
	}
	return exprString(e)
}

func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.SliceExpr:
		return exprString(v.X) + "[...]"
	case *ast.IndexExpr:
		return exprString(v.X) + "[...]"
	}
	return "value"
}
