package pubatomic_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/pubatomic"
)

func TestPubatomic(t *testing.T) {
	analysistest.Run(t, "testdata", pubatomic.Analyzer, "repro/internal/live")
}
