// Package faultwrap enforces the error discipline of the internal/faults
// taxonomy: failures are classified by wrapping sentinel errors with %w at
// the point of detection, so callers use errors.Is instead of string
// matching, and library code never panics on untrusted input.
//
// Three rules, in non-test code:
//
//  1. panic(...) is reserved for documented programming-error guards: the
//     enclosing function's doc comment must say "panic" (the standard
//     library's own convention, e.g. boolmat.New's negative-dimension
//     guard), or the function must follow the Must* naming convention.
//     Anything else is a crash path that should return a classified error.
//
//  2. fmt.Errorf that formats an error value without a %w verb severs the
//     error chain: errors.Is can no longer see the sentinel underneath.
//     Chain-breaking must be deliberate and annotated.
//
//  3. errors.New inside a function body mints an unclassifiable ad-hoc
//     error at what is usually a detection point. Wrap a faults sentinel
//     with fmt.Errorf("...: %w", faults.ErrX) or declare a package-level
//     sentinel instead.
package faultwrap

import (
	"go/ast"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the faultwrap check.
var Analyzer = &analysis.Analyzer{
	Name: "faultwrap",
	Doc: "flags undocumented panics, fmt.Errorf that formats an error without %w (severing errors.Is chains), " +
		"and ad-hoc errors.New at detection points that should wrap a faults sentinel",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		analysis.EachFunc(file, func(fd *ast.FuncDecl) {
			if fd.Body == nil {
				return
			}
			panicAllowed := docMentionsPanic(fd.Doc) || strings.HasPrefix(fd.Name.Name, "Must") || strings.HasPrefix(fd.Name.Name, "must")
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				obj := analysis.Callee(pass.TypesInfo, call)
				switch {
				case obj != nil && obj.Name() == "panic" && obj.Pkg() == nil:
					if !panicAllowed {
						pass.Reportf(call.Pos(), "panic in library code: return an error wrapping a faults sentinel instead, "+
							"or document the programming-error guard (\"panics if ...\") in the doc comment of %s", fd.Name.Name)
					}
				case analysis.IsPkgFunc(obj, "fmt", "Errorf"):
					checkErrorf(pass, call)
				case analysis.IsPkgFunc(obj, "errors", "New"):
					pass.Reportf(call.Pos(), "errors.New at a detection point mints an unclassifiable error; "+
						"wrap a repro/internal/faults sentinel with fmt.Errorf(\"...: %%w\", ...) or declare a package-level sentinel")
				}
				return true
			})
		})
	}
	return nil
}

func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) < 2 {
		return
	}
	format, ok := analysis.StringLit(call.Args[0])
	if !ok || strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if analysis.ImplementsError(pass.TypesInfo.TypeOf(arg)) {
			pass.Reportf(arg.Pos(), "error value formatted without %%w severs the chain: errors.Is can no longer "+
				"classify the failure against the faults taxonomy; use %%w (or annotate a deliberate chain break)")
			return
		}
	}
}

func docMentionsPanic(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	return strings.Contains(strings.ToLower(doc.Text()), "panic")
}
