package faultwrap_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/faultwrap"
)

func TestFaultwrap(t *testing.T) {
	analysistest.Run(t, "testdata", faultwrap.Analyzer, "repro/internal/faulty")
}
