// Package faulty exercises the faultwrap fixture: errors flow through the
// taxonomy with %w, panics are documented guards, ad-hoc errors are out.
package faulty

import (
	"errors"
	"fmt"
)

// ErrBadInput is the package sentinel; minting it at package level is the
// sanctioned use of errors.New.
var ErrBadInput = errors.New("faulty: bad input")

func sever(err error) error {
	return fmt.Errorf("decoding: %v", err) // want `error value formatted without %w severs the chain`
}

func chain(err error) error {
	return fmt.Errorf("decoding: %w", err)
}

func adhoc() error {
	return errors.New("something went wrong") // want `errors\.New at a detection point mints an unclassifiable error`
}

func classified(x int) error {
	if x < 0 {
		return fmt.Errorf("faulty: x = %d: %w", x, ErrBadInput)
	}
	return nil
}

func guard(x int) {
	if x < 0 {
		panic("faulty: negative x") // want `panic in library code`
	}
}

// checked panics when x is negative — the documented programming-error
// guard, following the standard library's convention.
func checked(x int) int {
	if x < 0 {
		panic("faulty: negative x")
	}
	return x
}

// MustValue follows the Must naming convention for panic-on-error helpers.
func MustValue(x int) int {
	if x < 0 {
		panic("faulty: negative x")
	}
	return x
}
