// Package analysis is the repo's static-analysis framework: a minimal,
// dependency-free re-implementation of the golang.org/x/tools/go/analysis
// vocabulary (Analyzer, Pass, Diagnostic) on top of the standard library's
// go/ast and go/types.
//
// The repo's hardest-won guarantees — view labels are read-only after
// construction, live sessions publish prefixes through exactly one atomic
// store, durable artifacts are written sync-then-rename, failures flow
// through the internal/faults taxonomy — used to live only in DESIGN.md
// prose. The analyzers built on this package (see the sibling directories and
// cmd/fvlvet) turn each of those rules into a compiler-grade check that runs
// in CI on every change.
//
// Why not depend on golang.org/x/tools directly? The module is intentionally
// dependency-free (go.mod lists nothing), and the analyzers need only a small
// slice of the x/tools surface: a named check with a Run function over one
// type-checked package, plus positional diagnostics. Mirroring the API shape
// keeps a later migration mechanical: an Analyzer here converts to an
// x/tools analysis.Analyzer by renaming imports.
//
// # Suppression
//
// Findings are suppressed with staticcheck-style directives:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//	//lint:file-ignore <analyzer>[,<analyzer>...] <reason>
//
// An ignore comment applies to diagnostics on its own line or on the line
// directly below it (so it can sit above the offending statement); the
// file-ignore form, anywhere in a file, silences the named analyzers for the
// whole file. The reason is mandatory: an ignore without one is itself
// reported. Some analyzers additionally honor function-level declaration
// directives (for example //fvlvet:fs-boundary); those are documented on the
// analyzer.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:ignore
	// directives. It must be a valid identifier.
	Name string
	// Doc is the one-paragraph description printed by fvlvet -list: the
	// invariant the analyzer enforces and how to suppress a finding.
	Doc string
	// Run executes the check over one package and reports findings through
	// pass.Report. The returned error aborts the whole run (reserved for
	// analyzer bugs, not findings).
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed, comment-bearing syntax trees,
	// non-test files only.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// PkgPath is the package's import path. For external test variants it is
	// normalized to the path of the package under test.
	PkgPath string
	// TypesInfo records type and object resolution for Files.
	TypesInfo *types.Info
	// Report delivers one finding.
	Report func(Diagnostic)
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is a diagnostic resolved against the file set and stamped with the
// analyzer that produced it — the unit the drivers print and the tests
// assert on.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
}

// String formats the finding the way go vet does, with the analyzer name
// appended so a reader knows which directive would suppress it.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Position, f.Message, f.Analyzer)
}
