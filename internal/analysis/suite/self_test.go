package suite_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/suite"
)

// TestRepoIsClean is the dogfood lock: the whole module stays free of suite
// findings. Every invariant violation is either fixed or carries a reviewed
// //lint:ignore justification, so a finding here is a regression against
// DESIGN.md's "Enforced invariants" — fix the code or annotate the reviewed
// exception; do not weaken the analyzer.
func TestRepoIsClean(t *testing.T) {
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	loader := analysis.NewLoader("repro", root)
	targets, err := loader.Targets([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range targets {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		findings, err := analysis.RunPackage(loader.Fset, pkg, suite.All())
		if err != nil {
			t.Fatalf("running the suite on %s: %v", path, err)
		}
		for _, f := range findings {
			t.Errorf("%s", f)
		}
	}
}
