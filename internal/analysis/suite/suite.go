// Package suite registers the repo's analyzers in one place, so the drivers
// (cmd/fvlvet in both standalone and go vet -vettool modes, and the
// self-clean regression test) agree on what "the suite" means.
package suite

import (
	"repro/internal/analysis"
	"repro/internal/analysis/closecheck"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/faultwrap"
	"repro/internal/analysis/immutafter"
	"repro/internal/analysis/pubatomic"
	"repro/internal/analysis/syncrename"
)

// All returns the full analyzer suite in a stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		closecheck.Analyzer,
		ctxflow.Analyzer,
		faultwrap.Analyzer,
		immutafter.Analyzer,
		pubatomic.Analyzer,
		syncrename.Analyzer,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
