// Package ctxflow enforces end-to-end context propagation, the PR 4
// contract: cancellation reaches every layer because each function that
// accepts a context.Context actually threads it into the ...Context variants
// below it. A dropped context parameter or a context.Background() conjured
// mid-stack silently disables cancellation for everything underneath —
// batch queries stop being abortable at claim-block granularity, labeling
// stops being abortable between views.
//
// Rules, in non-test code:
//
//  1. A declared context parameter must be used (a blank or unused ctx
//     parameter advertises cancellation it does not deliver).
//
//  2. A function that has a context must not call context.Background() or
//     context.TODO() — except to normalize a nil context onto its own
//     parameter (the `if ctx == nil { ctx = context.Background() }` idiom).
//
//  3. A function that has a context must not call a method or function F
//     when an FContext sibling exists: the sibling is where the context
//     goes.
//
//  4. A function without a context parameter may use context.Background()
//     only in package main (the root of the program owns the root context)
//     or to delegate directly to its own ...Context variant (the compat
//     wrapper idiom, e.g. DependsOnBatch -> DependsOnBatchContext).
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the ctxflow check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "flags dropped context parameters, mid-stack context.Background()/TODO(), and calls to F " +
		"where an FContext variant exists — cancellation must flow end to end",
	Run: run,
}

func run(pass *analysis.Pass) error {
	isMain := pass.Pkg.Name() == "main"
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		analysis.EachFunc(file, func(fd *ast.FuncDecl) {
			if fd.Body == nil {
				return
			}
			ctxParams, blankCtx := contextParams(pass.TypesInfo, fd)
			hasCtx := len(ctxParams) > 0 || blankCtx != token.NoPos

			if blankCtx != token.NoPos {
				pass.Reportf(blankCtx, "context parameter is blank: %s advertises cancellation it cannot deliver; "+
					"thread the context through or annotate why the interface forces the signature", fd.Name.Name)
			}
			used := map[*types.Var]bool{}
			walkStack(fd.Body, func(stack []ast.Node, n ast.Node) {
				switch e := n.(type) {
				case *ast.Ident:
					if v, ok := pass.TypesInfo.Uses[e].(*types.Var); ok && ctxParams[v] {
						used[v] = true
					}
				case *ast.CallExpr:
					obj := analysis.Callee(pass.TypesInfo, e)
					if isBackgroundOrTODO(obj) {
						checkBackground(pass, fd, stack, e, obj.Name(), hasCtx, isMain)
					} else if hasCtx && obj != nil {
						checkVariant(pass, e, obj)
					}
				}
			})
			for v := range ctxParams {
				if !used[v] {
					pass.Reportf(fd.Name.Pos(), "context parameter %s is dropped: %s accepts a context it never uses; "+
						"thread it into the calls below or remove the parameter", v.Name(), fd.Name.Name)
				}
			}
		})
	}
	return nil
}

// contextParams returns the function's named context.Context parameters and
// the position of a blank one, if any.
func contextParams(info *types.Info, fd *ast.FuncDecl) (map[*types.Var]bool, token.Pos) {
	out := map[*types.Var]bool{}
	blank := token.NoPos
	if fd.Type.Params == nil {
		return out, blank
	}
	for _, field := range fd.Type.Params.List {
		if !analysis.IsNamed(info.TypeOf(field.Type), "context", "Context") {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				blank = name.Pos()
				continue
			}
			if v, ok := info.Defs[name].(*types.Var); ok {
				out[v] = true
			}
		}
	}
	return out, blank
}

func isBackgroundOrTODO(obj types.Object) bool {
	return analysis.IsPkgFunc(obj, "context", "Background") || analysis.IsPkgFunc(obj, "context", "TODO")
}

func checkBackground(pass *analysis.Pass, fd *ast.FuncDecl, stack []ast.Node, call *ast.CallExpr, name string, hasCtx, isMain bool) {
	if hasCtx {
		if insideNilNormalize(pass.TypesInfo, stack) {
			return
		}
		pass.Reportf(call.Pos(), "context.%s() inside a function that already has a context: "+
			"use the parameter, or cancellation stops here", name)
		return
	}
	if isMain || delegatesToOwnContextVariant(pass.TypesInfo, fd, stack, call) {
		return
	}
	pass.Reportf(call.Pos(), "context.%s() in library code severs cancellation; accept a context.Context "+
		"or delegate to the %sContext variant", name, fd.Name.Name)
}

// insideNilNormalize reports whether the call sits under an if whose
// condition compares a context value to nil — the accepted
// `if ctx == nil { ctx = context.Background() }` idiom.
func insideNilNormalize(info *types.Info, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		if cond, ok := ifs.Cond.(*ast.BinaryExpr); ok && cond.Op == token.EQL {
			for _, side := range []ast.Expr{cond.X, cond.Y} {
				if analysis.IsNamed(info.TypeOf(side), "context", "Context") {
					return true
				}
			}
		}
	}
	return false
}

// delegatesToOwnContextVariant reports whether the Background() call is an
// argument of a direct call to <fn>Context — the compatibility-wrapper idiom.
func delegatesToOwnContextVariant(info *types.Info, fd *ast.FuncDecl, stack []ast.Node, call *ast.CallExpr) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		outer, ok := stack[i].(*ast.CallExpr)
		if !ok || outer == call {
			continue
		}
		obj := analysis.Callee(info, outer)
		if obj != nil && obj.Name() == fd.Name.Name+"Context" {
			return true
		}
	}
	return false
}

// checkVariant flags calls to F when FContext exists on the same receiver
// type or in the same package.
func checkVariant(pass *analysis.Pass, call *ast.CallExpr, obj types.Object) {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() == "" || hasSuffixContext(fn.Name()) {
		return
	}
	variant := fn.Name() + "Context"
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	if recv := sig.Recv(); recv != nil {
		vObj, _, _ := types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), variant)
		if vf, ok := vObj.(*types.Func); ok {
			pass.Reportf(call.Pos(), "%s drops the context in scope; call %s instead", fn.Name(), vf.Name())
		}
		return
	}
	if fn.Pkg() == nil {
		return
	}
	if _, ok := fn.Pkg().Scope().Lookup(variant).(*types.Func); ok {
		pass.Reportf(call.Pos(), "%s drops the context in scope; call %s instead", fn.Name(), variant)
	}
}

func hasSuffixContext(name string) bool {
	return len(name) >= 7 && name[len(name)-7:] == "Context"
}

// walkStack traverses the tree, handing fn each node together with the stack
// of its ancestors (excluding the node itself).
func walkStack(root ast.Node, fn func(stack []ast.Node, n ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(stack, n)
		stack = append(stack, n)
		return true
	})
}
