// Command tool exercises the ctxflow package-main exemption: the root of
// the program owns the root context.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = run(ctx)
}

func run(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}
