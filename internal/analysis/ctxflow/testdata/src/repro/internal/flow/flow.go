// Package flow exercises the ctxflow fixture: contexts thread end to end,
// with the two sanctioned escapes (nil-normalize, delegation wrappers).
package flow

import "context"

// Store is a query surface with paired context/context-free methods.
type Store struct{}

// Get answers without a caller context.
func (s *Store) Get(k string) int { return len(k) }

// GetContext is the context-aware variant of Get.
func (s *Store) GetContext(ctx context.Context, k string) int {
	if ctx.Err() != nil {
		return 0
	}
	return len(k)
}

// Lookup answers without a caller context, delegating to LookupContext —
// the compat-wrapper idiom, which may mint the root context.
func Lookup(k string) int { return LookupContext(context.Background(), k) }

// LookupContext is the context-aware variant of Lookup.
func LookupContext(ctx context.Context, k string) int {
	if ctx.Err() != nil {
		return 0
	}
	return len(k)
}

func dropped(ctx context.Context, k string) int { // want `context parameter ctx is dropped`
	return len(k)
}

func blank(_ context.Context, k string) int { // want `context parameter is blank`
	return len(k)
}

func variantMiss(ctx context.Context, s *Store) int {
	n := s.GetContext(ctx, "a")
	return n + s.Get("b") // want `Get drops the context in scope; call GetContext instead`
}

func funcVariantMiss(ctx context.Context, s *Store) int {
	n := s.GetContext(ctx, "a")
	return n + Lookup("b") // want `Lookup drops the context in scope; call LookupContext instead`
}

func midStack(ctx context.Context, s *Store) int {
	n := s.GetContext(ctx, "a")
	return n + s.GetContext(context.Background(), "b") // want `context\.Background\(\) inside a function that already has a context`
}

// Normalize accepts a nil context, the documented compat affordance.
func Normalize(ctx context.Context, s *Store) int {
	if ctx == nil {
		ctx = context.Background()
	}
	return s.GetContext(ctx, "k")
}

func sever(s *Store) int {
	return s.GetContext(context.Background(), "k") // want `context\.Background\(\) in library code severs cancellation`
}
