package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// incAnalyzer flags every ++ statement — a minimal analyzer for exercising
// the suppression machinery without any type information.
var incAnalyzer = &Analyzer{
	Name: "inc",
	Doc:  "flags increments (test analyzer)",
	Run: func(p *Pass) error {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if s, ok := n.(*ast.IncDecStmt); ok && s.Tok == token.INC {
					p.Reportf(s.Pos(), "increment")
				}
				return true
			})
		}
		return nil
	},
}

func runOnSource(t *testing.T, src string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunPackage(fset, &Package{PkgPath: "p", Files: []*ast.File{f}}, []*Analyzer{incAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

func TestSuppression(t *testing.T) {
	findings := runOnSource(t, `package p

func f() {
	x := 0
	x++
	//lint:ignore inc directive on the line above covers the statement
	x++
	x++ //lint:ignore inc trailing directive covers its own line
	//lint:ignore other,inc a list names several analyzers
	x++
	_ = x
}
`)
	if len(findings) != 1 {
		t.Fatalf("want exactly the unsuppressed increment, got %v", findings)
	}
	if findings[0].Analyzer != "inc" || findings[0].Position.Line != 5 {
		t.Errorf("surviving finding should be the bare x++ on line 5, got %v", findings[0])
	}
}

func TestFileIgnore(t *testing.T) {
	findings := runOnSource(t, `//lint:file-ignore inc the whole file is a reviewed exception

package p

func f() {
	x := 0
	x++
	x++
	_ = x
}
`)
	if len(findings) != 0 {
		t.Fatalf("file-ignore should silence every finding, got %v", findings)
	}
}

func TestMalformedIgnoreIsItselfAFinding(t *testing.T) {
	findings := runOnSource(t, `package p

func f() {
	x := 0
	//lint:ignore inc
	x++
	_ = x
}
`)
	var analyzers []string
	for _, f := range findings {
		analyzers = append(analyzers, f.Analyzer)
	}
	if len(findings) != 2 || analyzers[0] != "lintdir" || analyzers[1] != "inc" {
		t.Fatalf("a reason-less ignore must report lintdir and suppress nothing, got %v", findings)
	}
}

func TestHasDirective(t *testing.T) {
	src := `package p

// next builds the thing.
//
//fvlvet:prepublish runs before the value escapes
func next() {}

// plain has no directive, only prose mentioning fvlvet:prepublish inline.
func plain() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	var got []bool
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			got = append(got, HasDirective(fd.Doc, "fvlvet:prepublish"))
		}
	}
	if len(got) != 2 || !got[0] || got[1] {
		t.Errorf("HasDirective = %v, want [true false]", got)
	}
}
