// Package core impersonates repro/internal/core for the immutafter fixture:
// the analyzer keys on the import path, so the fixture supplies a miniature
// ViewLabel with the same mutation surfaces as the real one.
package core

type recChain struct {
	prefixes []int
}

// ViewLabel mirrors the real label's state shape: scalar fields, maps, and
// pointer-reachable recursion caches.
type ViewLabel struct {
	start    int
	included map[int]bool
	inRec    map[int]*recChain
}

// NewViewLabel is the construction path; its writes are the point.
//
//fvlvet:viewlabel-ctor
func NewViewLabel() *ViewLabel {
	vl := &ViewLabel{included: map[int]bool{}, inRec: map[int]*recChain{}}
	vl.start = 7
	vl.included[1] = true
	vl.inRec[1] = &recChain{prefixes: []int{1}}
	return vl
}

func (vl *ViewLabel) Reset() {
	vl.start = 0           // want `write to core\.ViewLabel state outside the construction path`
	vl.included[2] = true  // want `write to core\.ViewLabel state outside the construction path`
	delete(vl.included, 1) // want `write to core\.ViewLabel state outside the construction path`
}

func (vl *ViewLabel) Shrink() {
	vl.inRec[1].prefixes = nil // want `write to core\.recChain state outside the construction path`
}

// WithStart clones by value: direct field writes land on the private copy
// (the WithMatrixFree idiom), but writes through the copy's maps still reach
// the shared containers.
func (vl *ViewLabel) WithStart(s int) *ViewLabel {
	c := *vl
	c.start = s
	c.included[3] = true // want `write to core\.ViewLabel state outside the construction path`
	return &c
}

// Sanctioned proves the suppression mechanism: the annotated write below
// must produce no diagnostic.
func (vl *ViewLabel) Sanctioned() {
	//lint:ignore immutafter fixture exercises the reviewed-exception escape hatch
	vl.start = 1
}
