package immutafter_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/immutafter"
)

func TestImmutafter(t *testing.T) {
	analysistest.Run(t, "testdata", immutafter.Analyzer, "repro/internal/core")
}
