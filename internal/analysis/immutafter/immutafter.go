// Package immutafter enforces the PR 2 invariant that makes concurrent
// query serving sound: a core.ViewLabel is strictly read-only after
// construction. All per-query mutable state lives in a queryCtx, so one view
// label can answer any number of concurrent queries; a single stray write —
// to a label field, or through one of its reachable maps, slices or cached
// recursion chains — would reintroduce the data race the queryCtx refactor
// removed.
//
// The analyzer flags every syntactic write that lands on core.ViewLabel
// state (including its recChain caches) outside a function whose doc comment
// carries the //fvlvet:viewlabel-ctor directive — the explicit, reviewable
// marker of the construction/labeling path. Writing a field of a local
// by-value copy is allowed (the copy is private), but writes through the
// copy's maps and slices are still flagged: shallow copies share them with
// the original, which is exactly how WithMatrixFree clones stay safe.
package immutafter

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

const corePath = "repro/internal/core"

// Analyzer is the immutafter check.
var Analyzer = &analysis.Analyzer{
	Name: "immutafter",
	Doc: "flags writes to core.ViewLabel state outside //fvlvet:viewlabel-ctor construction functions " +
		"(view labels are read-only after construction so they can serve concurrent queries)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	match := func(n *types.Named) bool {
		obj := n.Obj()
		if obj.Pkg() == nil || obj.Pkg().Path() != corePath {
			return false
		}
		return obj.Name() == "ViewLabel" || obj.Name() == "recChain"
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		analysis.EachFunc(file, func(fd *ast.FuncDecl) {
			if analysis.HasDirective(fd.Doc, "fvlvet:viewlabel-ctor") || fd.Body == nil {
				return
			}
			analysis.EachWrite(pass.TypesInfo, fd.Body, func(w analysis.Write) {
				t, ok := analysis.MatchWrite(pass.TypesInfo, w.Lhs, match)
				if !ok {
					return
				}
				if !t.ViaContainer && !t.BasePointer && analysis.IsLocalValueVar(pass.TypesInfo, t.Base) {
					// Field write on a private by-value copy: safe, this is
					// the WithMatrixFree clone idiom.
					return
				}
				what := "core." + analysis.Named(pass.TypesInfo.TypeOf(t.Base)).Obj().Name()
				pass.Reportf(w.Pos, "write to %s state outside the construction path: view labels are read-only after construction; "+
					"move the mutation into a //fvlvet:viewlabel-ctor function or into the per-query context", what)
			})
		})
	}
	return nil
}
