package syncrename_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/syncrename"
)

func TestSyncrename(t *testing.T) {
	analysistest.Run(t, "testdata", syncrename.Analyzer, "repro/internal/export")
}
