// Package export exercises the syncrename fixture: artifact writes must go
// through the sync-then-rename choke points, not bare os calls.
package export

import "os"

func bad(path string, data []byte) error {
	if err := os.WriteFile(path, data, 0o666); err != nil { // want `direct os\.WriteFile bypasses the sync-then-rename discipline`
		return err
	}
	return os.Rename(path, path+".new") // want `direct os\.Rename bypasses the sync-then-rename discipline`
}

func badOpen(path string) error {
	f, err := os.Create(path) // want `direct os\.Create bypasses the sync-then-rename discipline`
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	g, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o666) // want `writable os\.OpenFile bypasses the sync-then-rename discipline`
	if err != nil {
		return err
	}
	return g.Close()
}

func allowed(path string) error {
	f, err := os.OpenFile(path, os.O_RDONLY, 0) // provably read-only: no finding
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	t, err := os.CreateTemp("", "probe-*") // temp files feed the rename protocol: no finding
	if err != nil {
		return err
	}
	return t.Close()
}

// boundary is the reviewed choke point that implements the discipline, so
// its own os.Rename is the point.
//
//fvlvet:fs-boundary
func boundary(oldname, newname string) error {
	return os.Rename(oldname, newname)
}
