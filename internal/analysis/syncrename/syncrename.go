// Package syncrename enforces the PR 6 durability discipline: artifacts
// reach the filesystem through sync-then-rename, never through a bare
// create-and-write. A snapshot, manifest or exported file written with
// os.Create/os.WriteFile can be torn by a crash mid-write; the repo's two
// sanctioned paths — labelstore.WriteFileAtomic (re-exported as
// fvl.WriteFileAtomic for the CLIs) and the durable.FS boundary with its
// explicit Sync/SyncDir protocol — exist so that can't happen.
//
// The analyzer flags direct calls to os.Rename, os.WriteFile, os.Create and
// writable os.OpenFile in non-test code. The reviewed choke points that
// implement the discipline itself (WriteFileAtomic, the DirFS methods) are
// marked with a //fvlvet:fs-boundary directive on the function declaration;
// everything else either goes through them or carries a //lint:ignore with a
// written justification. os.CreateTemp stays legal: temporary files are the
// raw material of the rename protocol and never survive a crash as a
// presentable artifact.
package syncrename

import (
	"go/ast"
	"go/constant"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the syncrename check.
var Analyzer = &analysis.Analyzer{
	Name: "syncrename",
	Doc: "flags direct os.Rename/os.Create/os.WriteFile/writable os.OpenFile calls that bypass the " +
		"sync-then-rename helpers (WriteFileAtomic, durable.FS); mark reviewed choke points //fvlvet:fs-boundary",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		analysis.EachFunc(file, func(fd *ast.FuncDecl) {
			if analysis.HasDirective(fd.Doc, "fvlvet:fs-boundary") || fd.Body == nil {
				return
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				obj := analysis.Callee(pass.TypesInfo, call)
				switch {
				case analysis.IsPkgFunc(obj, "os", "Rename"),
					analysis.IsPkgFunc(obj, "os", "WriteFile"),
					analysis.IsPkgFunc(obj, "os", "Create"):
					pass.Reportf(call.Pos(), "direct os.%s bypasses the sync-then-rename discipline; write through "+
						"WriteFileAtomic or the durable.FS boundary, or mark a reviewed choke point with //fvlvet:fs-boundary", obj.Name())
				case analysis.IsPkgFunc(obj, "os", "OpenFile"):
					if len(call.Args) >= 2 && writableFlags(pass.TypesInfo, call.Args[1]) {
						pass.Reportf(call.Pos(), "writable os.OpenFile bypasses the sync-then-rename discipline; write through "+
							"WriteFileAtomic or the durable.FS boundary, or mark a reviewed choke point with //fvlvet:fs-boundary")
					}
				}
				return true
			})
		})
	}
	return nil
}

// writableFlags reports whether the OpenFile flag expression provably
// includes O_WRONLY or O_RDWR. Unknown (non-constant) flags are treated as
// writable: the discipline is the default, read-only opens are the special
// case that must be provable.
func writableFlags(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return true
	}
	v, ok := constant.Int64Val(tv.Value)
	if !ok {
		return true
	}
	// os.O_WRONLY = 1, os.O_RDWR = 2 on every platform (syscall values).
	return v&3 != 0
}
