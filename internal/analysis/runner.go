package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// RunPackage runs the analyzers over one loaded package and returns the
// surviving findings: diagnostics minus the ones suppressed by //lint:ignore
// directives, plus one synthetic finding per malformed directive (an ignore
// without a reason defeats the point of mandatory justification).
func RunPackage(fset *token.FileSet, pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			PkgPath:   pkg.PkgPath,
			TypesInfo: pkg.Info,
		}
		pass.Report = func(d Diagnostic) {
			findings = append(findings, Finding{
				Analyzer: a.Name,
				Position: fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	ignores, bad := collectIgnores(fset, pkg.Files)
	findings = suppress(findings, ignores)
	findings = append(findings, bad...)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// ignoreSet records, per file, the line-scoped and file-scoped suppression
// directives.
type ignoreSet struct {
	// byLine maps filename -> line of the directive -> analyzer names.
	byLine map[string]map[int][]string
	// byFile maps filename -> analyzer names silenced for the whole file.
	byFile map[string][]string
}

func collectIgnores(fset *token.FileSet, files []*ast.File) (ignoreSet, []Finding) {
	set := ignoreSet{byLine: map[string]map[int][]string{}, byFile: map[string][]string{}}
	var bad []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, fileWide, ok := cutIgnore(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				names, reason, _ := strings.Cut(text, " ")
				if names == "" || strings.TrimSpace(reason) == "" {
					bad = append(bad, Finding{
						Analyzer: "lintdir",
						Position: pos,
						Message:  "malformed //lint:ignore directive: want //lint:ignore <analyzer>[,<analyzer>] <reason>",
					})
					continue
				}
				split := strings.Split(names, ",")
				if fileWide {
					set.byFile[pos.Filename] = append(set.byFile[pos.Filename], split...)
					continue
				}
				lines := set.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					set.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], split...)
			}
		}
	}
	return set, bad
}

// cutIgnore splits a //lint:ignore or //lint:file-ignore comment into its
// payload, reporting which form it was.
func cutIgnore(comment string) (payload string, fileWide, ok bool) {
	if rest, found := strings.CutPrefix(comment, "//lint:ignore "); found {
		return strings.TrimSpace(rest), false, true
	}
	if rest, found := strings.CutPrefix(comment, "//lint:file-ignore "); found {
		return strings.TrimSpace(rest), true, true
	}
	return "", false, false
}

func suppress(findings []Finding, ignores ignoreSet) []Finding {
	matches := func(names []string, analyzer string) bool {
		for _, n := range names {
			if strings.TrimSpace(n) == analyzer {
				return true
			}
		}
		return false
	}
	out := findings[:0]
	for _, f := range findings {
		if matches(ignores.byFile[f.Position.Filename], f.Analyzer) {
			continue
		}
		// A line directive covers findings on its own line (trailing
		// comment) and on the line directly below it (comment above the
		// offending statement).
		if lines := ignores.byLine[f.Position.Filename]; lines != nil &&
			(matches(lines[f.Position.Line], f.Analyzer) || matches(lines[f.Position.Line-1], f.Analyzer)) {
			continue
		}
		out = append(out, f)
	}
	return out
}

// HasDirective reports whether a declaration's doc comment carries the given
// machine directive (for example //fvlvet:fs-boundary). Directives are
// whole-line comments; trailing explanation text after the directive name is
// allowed.
func HasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		text = strings.TrimSpace(text)
		if text == name || strings.HasPrefix(text, name+" ") {
			return true
		}
	}
	return false
}

// IsTestFile reports whether pos lies in a _test.go file. The loader never
// feeds test files to analyzers, but the unitchecker driver (run by go vet)
// receives them as part of test variant packages and the analyzers must not
// fire there.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
