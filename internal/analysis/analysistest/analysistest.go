// Package analysistest runs an analyzer over fixture packages and checks its
// diagnostics against // want comments, mirroring the contract of
// golang.org/x/tools/go/analysis/analysistest on the repo's own framework.
//
// Fixtures live under <testdata>/src/<import-path>/ (GOPATH-style, so a
// fixture can impersonate any import path an analyzer keys on, including
// repro/internal/core). A line that must be flagged carries a trailing
// comment of the form
//
//	x.f = 1 // want `regexp`
//
// with one backquoted (or double-quoted) regular expression per expected
// diagnostic on that line. Every diagnostic must be matched by a want and
// every want must be matched by a diagnostic; //lint:ignore suppression is
// applied before matching, so fixtures also prove the suppression mechanism.
package analysistest

import (
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads each fixture package from testdata/src and checks the analyzer's
// findings against the fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	loader := analysis.NewLoader("", testdata+"/src")
	for _, path := range pkgPaths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Errorf("loading fixture %s: %v", path, err)
			continue
		}
		findings, err := analysis.RunPackage(loader.Fset, pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, path, err)
			continue
		}
		checkWants(t, loader, pkg, findings)
	}
}

type want struct {
	re      *regexp.Regexp
	raw     string
	line    int
	file    string
	matched bool
}

func checkWants(t *testing.T, loader *analysis.Loader, pkg *analysis.Package, findings []analysis.Finding) {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := loader.Fset.Position(c.Pos())
				for _, raw := range splitWants(text) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, raw, err)
						continue
					}
					wants = append(wants, &want{re: re, raw: raw, line: pos.Line, file: pos.Filename})
				}
			}
		}
	}
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == f.Position.Filename && w.line == f.Position.Line && w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// splitWants extracts the quoted or backquoted expectation strings of one
// want comment.
func splitWants(text string) []string {
	var out []string
	for {
		text = strings.TrimSpace(text)
		if text == "" {
			return out
		}
		quote := text[0]
		if quote != '`' && quote != '"' {
			return out
		}
		end := strings.IndexByte(text[1:], quote)
		if end < 0 {
			return out
		}
		out = append(out, text[1:1+end])
		text = text[end+2:]
	}
}
