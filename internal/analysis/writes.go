package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Write is one syntactic mutation site: an assignment target, the operand of
// ++/--, or the container argument of the delete and clear builtins.
type Write struct {
	// Lhs is the full expression being written through.
	Lhs ast.Expr
	// Pos anchors the diagnostic.
	Pos token.Pos
}

// EachWrite calls fn for every mutation site in the subtree rooted at n,
// including those inside function literals.
func EachWrite(info *types.Info, n ast.Node, fn func(Write)) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				fn(Write{Lhs: lhs, Pos: lhs.Pos()})
			}
		case *ast.IncDecStmt:
			fn(Write{Lhs: s.X, Pos: s.X.Pos()})
		case *ast.CallExpr:
			if b, ok := Callee(info, s).(*types.Builtin); ok && len(s.Args) > 0 {
				if name := b.Name(); name == "delete" || name == "clear" {
					fn(Write{Lhs: s.Args[0], Pos: s.Args[0].Pos()})
				}
			}
		}
		return true
	})
}

// WriteTarget describes how a write reaches a matched type.
type WriteTarget struct {
	// Sel is the field selector through which the write happens.
	Sel *ast.SelectorExpr
	// Base is the expression of the matched type (the selector's operand).
	Base ast.Expr
	// ViaContainer is true when the write passes through an index expression
	// or pointer dereference below the field selector — mutating state the
	// matched value merely points to, which shallow copies share.
	ViaContainer bool
	// BasePointer is true when Base is a pointer to the matched type.
	BasePointer bool
}

// MatchWrite walks down a write's left-hand side and reports the outermost
// field selector whose operand type (possibly behind a pointer) satisfies
// match. It returns false when the write never touches a matched type.
func MatchWrite(info *types.Info, lhs ast.Expr, match func(*types.Named) bool) (WriteTarget, bool) {
	via := false
	cur := lhs
	for {
		switch e := cur.(type) {
		case *ast.ParenExpr:
			cur = e.X
		case *ast.IndexExpr:
			via = true
			cur = e.X
		case *ast.StarExpr:
			via = true
			cur = e.X
		case *ast.SelectorExpr:
			bt := info.TypeOf(e.X)
			if n := Named(bt); n != nil && match(n) {
				_, isPtr := types.Unalias(bt).(*types.Pointer)
				return WriteTarget{Sel: e, Base: e.X, ViaContainer: via, BasePointer: isPtr}, true
			}
			cur = e.X
		default:
			return WriteTarget{}, false
		}
	}
}

// IsLocalValueVar reports whether e names a function-local, non-field
// variable — the one kind of base a direct field write cannot leak through,
// because the write lands on the local copy.
func IsLocalValueVar(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil {
		return false
	}
	return v.Parent() != v.Pkg().Scope()
}
