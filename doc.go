// Package repro is a from-scratch Go reproduction of "Labeling Workflow Views
// with Fine-Grained Dependencies" (Bao, Davidson, Milo; UPenn MS-CIS-12-11 /
// VLDB 2012): a view-adaptive dynamic labeling scheme (FVL) for answering
// reachability queries over views of workflow provenance graphs, together
// with the workflow model, safety analysis, view machinery, the DRL baseline
// it is compared against, and the full experiment harness of the paper's
// evaluation section.
//
// The implementation lives under internal/; the runnable entry points are the
// commands under cmd/ and the programs under examples/. See README.md for an
// overview and DESIGN.md for the system inventory and experiment index.
package repro
