// Package repro is a from-scratch Go reproduction of "Labeling Workflow Views
// with Fine-Grained Dependencies" (Bao, Davidson, Milo; UPenn MS-CIS-12-11 /
// VLDB 2012): a view-adaptive dynamic labeling scheme (FVL) for answering
// reachability queries over views of workflow provenance graphs, together
// with the workflow model, safety analysis, view machinery, the DRL baseline
// it is compared against, and the full experiment harness of the paper's
// evaluation section.
//
// The public API is the fvl package (repro/fvl), one context-aware façade
// over labeling, querying, snapshots and serving; the experiment harness is
// public as repro/fvl/bench. The implementation lives under internal/; the
// runnable entry points are the commands under cmd/ and the programs under
// examples/, all of which consume only repro/fvl. See README.md for an
// overview and DESIGN.md for the system inventory and the façade boundary.
package repro
